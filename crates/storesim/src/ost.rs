//! The storage-target (OST) model: a processor-sharing server with a
//! write-back cache, per-stream caps, fixed request overheads, contention
//! penalties, and an external-noise slowdown factor.
//!
//! ## Service model
//!
//! Each in-flight request is a *stream* in one of two lanes:
//!
//! * **Cache lane** — the request fit in the write-back cache at admission.
//!   Streams share the cache-ingest bandwidth (`ingest_eff(k) / k` each,
//!   capped per stream).
//! * **Disk lane** — the cache could not absorb the request (or it is a
//!   read / forced-direct write). Streams share the effective disk
//!   bandwidth (`disk_eff(n) / n` each, capped per stream). `disk_eff`
//!   *declines* as streams are added — this is the paper's internal
//!   interference.
//!
//! Both lanes are additionally scaled by the current external-noise factor
//! (≤ 1), which models other jobs stealing server throughput — the paper's
//! external interference.
//!
//! Every request first burns a fixed `request_overhead` (RPC setup) before
//! transferring bytes.
//!
//! The model is *fluid*: between state changes (arrival, departure, noise
//! flip) every stream progresses linearly, so the OST only needs to
//! "settle" elapsed progress at state changes and can always predict its
//! next completion exactly. The owning `StorageSystem` turns those
//! predictions into discrete events.
//!
//! ## Two engines, one model
//!
//! * [`vt::VtOst`] — the **virtual-time** engine (default): per-lane
//!   virtual clocks integrate the per-stream rate, streams carry virtual
//!   finish tags in per-lane min-heaps, and every operation is O(log W)
//!   or better. See `DESIGN.md` §10 for the formulation.
//! * [`reference::RefOst`] — the original per-`dt` settle loop: O(W) per
//!   settle and per prediction. Kept as the executable specification;
//!   `tests/vt_differential.rs` pins the two engines to identical
//!   completion sets, ordering and times (within 1 ns) over randomized
//!   schedules.
//!
//! The `Ost` alias selects the virtual-time engine by default and the
//! reference loop under the `baseline-engine` feature (the workspace's
//! before/after benchmarking convention). Both engines are always
//! compiled.

use simcore::{SimDuration, SimTime};

use crate::params::OstParams;

pub mod reference;
pub mod vt;

/// The engine the rest of the workspace runs on: virtual-time by
/// default, the reference settle loop under `baseline-engine`.
#[cfg(not(feature = "baseline-engine"))]
pub type Ost = vt::VtOst;

/// The engine the rest of the workspace runs on (reference settle loop —
/// the `baseline-engine` build).
#[cfg(feature = "baseline-engine")]
pub type Ost = reference::RefOst;

/// Identifies one outstanding request within the storage system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// What kind of operation a stream is performing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// A write that may use the write-back cache.
    Write,
    /// A write that must bypass the cache (e.g. huge background streams).
    WriteDirect,
    /// A read (always disk lane; reads are not absorbed by the write cache).
    Read,
}

/// The two processor-sharing lanes of one target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Lane {
    Cache,
    Disk,
}

/// A completed request, as reported by `advance`.
#[derive(Clone, Copy, Debug)]
pub struct OstCompletion {
    /// The request that finished.
    pub id: RequestId,
    /// When it was admitted.
    pub submitted: SimTime,
    /// Size in bytes.
    pub bytes: u64,
}

/// Remaining bytes below this threshold count as finished (absorbs f64
/// drift from repeated settling / virtual-clock integration).
pub(crate) const DONE_EPS: f64 = 0.5;

/// High bit of a request id marks lane-local background streams, so a
/// harvested completion (or a `fail_all` abort list) can be routed
/// without consulting any shared map — and so the engines' foreground
/// completion bounds can skip interference streams. Foreground ids come
/// from a plain counter and never reach this bit.
pub(crate) const BG_BIT: u64 = 1 << 63;

/// Longest delay a completion prediction will ever schedule, seconds.
/// Extreme noise compositions (stacked brownouts on a degraded target)
/// can push a lane's per-stream rate into the subnormal range, where
/// `remaining / rate` overflows to `inf` (or `0/0` goes NaN) and would
/// panic inside `SimTime::from_secs_f64`. Clamping to a far-future
/// horizon instead just produces a spurious wake that re-plans; 1e9
/// simulated seconds is ~32 years, three orders of magnitude past the
/// runner's 1e6 s deadline, and stays far below `SimTime::MAX` in ns.
pub(crate) const MAX_WAKE_DELAY_SECS: f64 = 1e9;

/// Clamp a predicted completion delay to `[0, MAX_WAKE_DELAY_SECS]`.
/// `f64::max`/`f64::min` return the non-NaN operand, so a NaN delay
/// (`0/0`: a finished stream on a zero-rate lane) clamps to an immediate
/// wake — which is correct, the stream is harvestable now — and `inf`
/// clamps to the horizon.
// Not `f64::clamp`: clamp propagates NaN, and the NaN -> 0 behaviour here
// is the point.
#[allow(clippy::manual_clamp)]
pub(crate) fn wake_delay(secs: f64) -> SimDuration {
    SimDuration::from_secs_f64(secs.max(0.0).min(MAX_WAKE_DELAY_SECS))
}

/// Per-stream byte rate of one lane given the current populations and
/// noise factor. Shared by both engines so they agree bit-for-bit.
///
/// External noise scales the whole server, including per-stream request
/// processing — otherwise a high-ingest cache would hide interference
/// behind the stream cap.
pub(crate) fn per_stream_rate(
    params: &OstParams,
    lane: Lane,
    n_disk: usize,
    n_cache: usize,
    noise_factor: f64,
) -> f64 {
    let cap = params.stream_cap * noise_factor;
    match lane {
        Lane::Disk => {
            let eff = params.disk_eff(n_disk) * noise_factor;
            (eff / n_disk.max(1) as f64).min(cap)
        }
        Lane::Cache => {
            let eff = params.ingest_eff(n_cache) * noise_factor;
            (eff / n_cache.max(1) as f64).min(cap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::testbed;
    use simcore::units::MIB;

    /// The full unit suite runs against *both* engines — the reference
    /// loop is the executable specification, and every behavioural claim
    /// below must hold for the virtual-time engine too. Wake semantics
    /// differ (the virtual-time engine may wake at an overhead expiry
    /// that harvests nothing), so tests drive to completion instead of
    /// assuming `next_completion()` is itself a completion instant.
    macro_rules! ost_suite {
        ($name:ident, $ost:ty) => {
            mod $name {
                use super::*;

                type OstT = $ost;

                fn t(secs: f64) -> SimTime {
                    SimTime::from_secs_f64(secs)
                }

                fn small_ost() -> OstT {
                    <OstT>::new(testbed().ost)
                }

                /// Drive wake-by-wake until `target` completes; returns
                /// the completion instant.
                fn finish_of(ost: &mut OstT, target: RequestId) -> SimTime {
                    for _ in 0..100_000 {
                        let at = ost.next_completion().expect("stream in flight");
                        if ost.advance(at).iter().any(|c| c.id == target) {
                            return at;
                        }
                    }
                    panic!("request {target:?} never completed");
                }

                /// Predicted completion instant of `target`, computed on
                /// a clone so the real OST is untouched.
                fn predicted(ost: &OstT, target: RequestId) -> SimTime {
                    finish_of(&mut ost.clone(), target)
                }

                /// Drive until the next non-empty harvest.
                fn next_batch(ost: &mut OstT) -> (SimTime, Vec<OstCompletion>) {
                    for _ in 0..100_000 {
                        let at = ost.next_completion().expect("stream in flight");
                        let done = ost.advance(at);
                        if !done.is_empty() {
                            return (at, done);
                        }
                    }
                    panic!("no completion surfaced");
                }

                #[test]
                fn single_cache_write_takes_overhead_plus_ingest_time() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p.clone());
                    let bytes = 8 * MIB;
                    ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    let done_at = finish_of(&mut ost, RequestId(1));
                    let rate = p.cache_ingest_peak.min(p.stream_cap);
                    let expect = p.request_overhead + bytes as f64 / rate;
                    assert!(
                        (done_at.as_secs_f64() - expect).abs() < 1e-6,
                        "got {done_at}, expected {expect}"
                    );
                }

                #[test]
                fn oversized_write_goes_to_disk_lane() {
                    let p = testbed().ost; // 64 MiB cache
                    let mut ost = <OstT>::new(p.clone());
                    let bytes = 128 * MIB;
                    ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    assert_eq!(ost.disk_streams(), 1);
                    let done_at = finish_of(&mut ost, RequestId(1));
                    let rate = p.disk_peak.min(p.stream_cap);
                    let expect = p.request_overhead + bytes as f64 / rate;
                    assert!((done_at.as_secs_f64() - expect).abs() < 1e-6);
                }

                #[test]
                fn read_is_disk_lane() {
                    let mut ost = small_ost();
                    ost.submit(SimTime::ZERO, RequestId(1), MIB, OpKind::Read);
                    assert_eq!(ost.disk_streams(), 1);
                    assert_eq!(ost.cache_used(), 0);
                }

                #[test]
                fn write_direct_bypasses_cache() {
                    let mut ost = small_ost();
                    ost.submit(SimTime::ZERO, RequestId(1), MIB, OpKind::WriteDirect);
                    assert_eq!(ost.disk_streams(), 1);
                    assert_eq!(ost.cache_used(), 0);
                }

                #[test]
                fn cache_reservation_fills_then_spills() {
                    let p = testbed().ost; // 64 MiB cache
                    let mut ost = <OstT>::new(p);
                    // Two 32 MiB writes fill the cache exactly.
                    ost.submit(SimTime::ZERO, RequestId(1), 32 * MIB, OpKind::Write);
                    ost.submit(SimTime::ZERO, RequestId(2), 32 * MIB, OpKind::Write);
                    assert_eq!(ost.disk_streams(), 0);
                    // Third write cannot fit: disk lane.
                    ost.submit(SimTime::ZERO, RequestId(3), MIB, OpKind::Write);
                    assert_eq!(ost.disk_streams(), 1);
                }

                #[test]
                fn cache_drains_when_disk_idle() {
                    let p = testbed().ost;
                    let drain = p.cache_drain;
                    let mut ost = <OstT>::new(p);
                    ost.submit(SimTime::ZERO, RequestId(1), 32 * MIB, OpKind::Write);
                    let done_at = finish_of(&mut ost, RequestId(1));
                    // Cache holds the written bytes minus whatever drained
                    // during the (disk-idle) ingest itself.
                    let held = ost.cache_used();
                    assert!(held > 0 && held <= 32 * MIB, "cache holds {held}");
                    // Wait long enough for the cache to fully drain.
                    let wait = 32.0 * MIB as f64 / drain + 0.1;
                    let later = done_at + SimDuration::from_secs_f64(wait);
                    ost.advance(later);
                    assert_eq!(ost.cache_used(), 0);
                }

                #[test]
                fn two_disk_streams_share_bandwidth() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p.clone());
                    let bytes = 128 * MIB; // > cache, disk lane
                    ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    ost.submit(SimTime::ZERO, RequestId(2), bytes, OpKind::Write);
                    let (done_at, done) = next_batch(&mut ost);
                    let per_stream = (p.disk_eff(2) / 2.0).min(p.stream_cap);
                    let expect = p.request_overhead + bytes as f64 / per_stream;
                    assert!(
                        (done_at.as_secs_f64() - expect).abs() < 1e-6,
                        "got {done_at} expected {expect}"
                    );
                    // Both complete together.
                    assert_eq!(done.len(), 2);
                }

                #[test]
                fn contention_slows_per_stream_service() {
                    let p = testbed().ost;
                    // One stream alone.
                    let mut a = <OstT>::new(p.clone());
                    a.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::Write);
                    let alone = finish_of(&mut a, RequestId(1));
                    // Same stream with 7 competitors.
                    let mut b = <OstT>::new(p);
                    for i in 0..8 {
                        b.submit(SimTime::ZERO, RequestId(i), 128 * MIB, OpKind::Write);
                    }
                    let shared = finish_of(&mut b, RequestId(0));
                    assert!(
                        shared.as_secs_f64() > 4.0 * alone.as_secs_f64(),
                        "8-way sharing should be much slower: alone {alone}, shared {shared}"
                    );
                }

                #[test]
                fn late_arrival_slows_in_flight_stream() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p.clone());
                    let bytes = 128 * MIB;
                    ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    let solo_finish = predicted(&ost, RequestId(1));
                    // Halfway through, a second stream arrives.
                    let half = t(solo_finish.as_secs_f64() / 2.0);
                    ost.submit(half, RequestId(2), bytes, OpKind::Write);
                    let new_finish = predicted(&ost, RequestId(1));
                    assert!(
                        new_finish > solo_finish,
                        "arrival must delay the first stream"
                    );
                }

                #[test]
                fn departure_speeds_up_survivors() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p.clone());
                    ost.submit(SimTime::ZERO, RequestId(1), 16 * MIB, OpKind::WriteDirect);
                    ost.submit(SimTime::ZERO, RequestId(2), 256 * MIB, OpKind::WriteDirect);
                    // Predicted finish of the big stream under 2-way sharing.
                    let shared_rate = (p.disk_eff(2) / 2.0).min(p.stream_cap);
                    let naive_finish = p.request_overhead + 256.0 * MIB as f64 / shared_rate;
                    // Let the small one finish.
                    let (_, done) = next_batch(&mut ost);
                    assert_eq!(done.len(), 1);
                    assert_eq!(done[0].id, RequestId(1));
                    // The survivor now runs faster than naive 2-way prediction.
                    let survivor_finish = predicted(&ost, RequestId(2));
                    assert!(
                        survivor_finish.as_secs_f64() < naive_finish,
                        "survivor {survivor_finish} vs naive {naive_finish}"
                    );
                }

                #[test]
                fn noise_slows_service() {
                    let p = testbed().ost;
                    let bytes = 128 * MIB;
                    let mut quiet = <OstT>::new(p.clone());
                    quiet.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    let q = predicted(&quiet, RequestId(1));

                    let mut noisy = <OstT>::new(p);
                    noisy.set_noise(SimTime::ZERO, 0.25);
                    noisy.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    let n = predicted(&noisy, RequestId(1));
                    assert!(
                        n.as_secs_f64() > 3.0 * q.as_secs_f64(),
                        "4x slowdown expected-ish: quiet {q}, noisy {n}"
                    );
                }

                #[test]
                fn mid_flight_noise_change_replans() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p);
                    let bytes = 256 * MIB;
                    ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
                    let before = predicted(&ost, RequestId(1));
                    // Halfway, the OST becomes very slow.
                    let half = t(before.as_secs_f64() / 2.0);
                    ost.set_noise(half, 0.1);
                    let after = predicted(&ost, RequestId(1));
                    assert!(after > before, "slowdown must push completion out");
                    // Recovery speeds it back up (but can't beat the original).
                    ost.set_noise(t(before.as_secs_f64() * 0.75), 1.0);
                    let recovered = predicted(&ost, RequestId(1));
                    assert!(recovered < after);
                    assert!(recovered > before);
                }

                #[test]
                fn completions_preserve_metadata() {
                    let mut ost = small_ost();
                    ost.submit(t(1.0), RequestId(42), 2 * MIB, OpKind::Write);
                    let (_, done) = next_batch(&mut ost);
                    assert_eq!(done.len(), 1);
                    assert_eq!(done[0].id, RequestId(42));
                    assert_eq!(done[0].bytes, 2 * MIB);
                    assert_eq!(done[0].submitted, t(1.0));
                }

                #[test]
                fn idle_ost_has_no_next_completion() {
                    let ost = small_ost();
                    assert!(ost.next_completion().is_none());
                    assert_eq!(ost.active_streams(), 0);
                }

                #[test]
                fn overhead_dominates_tiny_writes() {
                    let p = testbed().ost;
                    let mut ost = <OstT>::new(p.clone());
                    ost.submit(SimTime::ZERO, RequestId(1), 1, OpKind::Write);
                    let at = finish_of(&mut ost, RequestId(1));
                    assert!(at.as_secs_f64() >= p.request_overhead);
                }

                #[test]
                fn frozen_ost_makes_no_progress_then_resumes() {
                    let mut ost = small_ost();
                    ost.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::Write);
                    let planned = predicted(&ost, RequestId(1));
                    let half = t(planned.as_secs_f64() / 2.0);
                    ost.freeze(half);
                    assert!(ost.next_completion().is_none(), "frozen OST predicts nothing");
                    assert!(ost.advance(planned).is_empty(), "no completions while frozen");
                    // Thaw after a long stall: remaining work picks up where
                    // it left off.
                    let thaw = t(planned.as_secs_f64() * 3.0);
                    ost.unfreeze(thaw);
                    let resumed = finish_of(&mut ost, RequestId(1));
                    let expect = thaw.as_secs_f64() + planned.as_secs_f64() / 2.0;
                    assert!(
                        (resumed.as_secs_f64() - expect).abs() < 1e-6,
                        "resumed {resumed}, expected ~{expect}"
                    );
                }

                #[test]
                fn fail_all_aborts_streams_and_wipes_cache() {
                    let mut ost = small_ost();
                    ost.submit(SimTime::ZERO, RequestId(2), 128 * MIB, OpKind::Write);
                    ost.submit(SimTime::ZERO, RequestId(1), 8 * MIB, OpKind::Write);
                    let ids = ost.fail_all(t(0.1));
                    // Aborted ids come back sorted, independent of internal
                    // storage order (both engines agree).
                    assert_eq!(ids, vec![RequestId(1), RequestId(2)]);
                    assert_eq!(ost.active_streams(), 0);
                    assert_eq!(ost.cache_used(), 0);
                    assert!(ost.next_completion().is_none());
                    // The target accepts fresh work afterwards.
                    ost.submit(t(0.2), RequestId(3), MIB, OpKind::Write);
                    assert!(ost.next_completion().is_some());
                }

                #[test]
                fn many_streams_complete_exactly_once() {
                    let mut ost = small_ost();
                    for i in 0..50u64 {
                        ost.submit(SimTime::ZERO, RequestId(i), (i + 1) * 100_000, OpKind::WriteDirect);
                    }
                    let mut seen = std::collections::HashSet::new();
                    while let Some(at) = ost.next_completion() {
                        for c in ost.advance(at) {
                            assert!(seen.insert(c.id), "duplicate completion {:?}", c.id);
                        }
                    }
                    assert_eq!(seen.len(), 50);
                    assert_eq!(ost.active_streams(), 0);
                }

                #[test]
                fn simultaneous_completions_sorted_by_id() {
                    let mut ost = small_ost();
                    for i in [5u64, 3, 9, 1, 7] {
                        ost.submit(SimTime::ZERO, RequestId(i), 4 * MIB, OpKind::WriteDirect);
                    }
                    let (_, done) = next_batch(&mut ost);
                    let ids: Vec<u64> = done.iter().map(|c| c.id.0).collect();
                    assert_eq!(ids, vec![1, 3, 5, 7, 9]);
                }

                #[test]
                fn near_zero_rate_yields_far_future_wake_not_panic() {
                    // Stacked brownouts can push the combined noise factor
                    // into the subnormal range; the prediction must clamp to
                    // a finite far-future wake instead of overflowing into
                    // `SimTime::from_secs_f64(inf)`.
                    let mut ost = small_ost();
                    ost.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::WriteDirect);
                    ost.set_noise(t(0.5), 1e-300);
                    let at = ost.next_completion().expect("still predicts a wake");
                    assert!(
                        at.as_secs_f64() >= 0.5 + 1e8,
                        "near-zero rate must push the wake to the horizon, got {at}"
                    );
                    // The spurious wake harvests nothing and re-plans finitely.
                    assert!(ost.advance(at).is_empty());
                    assert!(ost.next_completion().is_some());
                    // Recovery still completes the stream.
                    let recover = at + SimDuration::from_secs_f64(1.0);
                    ost.set_noise(recover, 1.0);
                    let done_at = finish_of(&mut ost, RequestId(1));
                    assert!(done_at > recover);
                }

                #[test]
                fn fg_bound_is_a_true_lower_bound_under_contention_and_noise() {
                    // The lookahead contract: the bound must never exceed
                    // the actual first foreground completion instant, under
                    // contention (8-way sharing) and degraded noise alike.
                    let mut ost = small_ost();
                    ost.set_noise(SimTime::ZERO, 0.4);
                    for i in 0..8u64 {
                        ost.submit(SimTime::ZERO, RequestId(i), 32 * MIB, OpKind::WriteDirect);
                    }
                    let bound = ost.fg_completion_bound().expect("foreground in flight");
                    assert!(bound > SimTime::ZERO, "busy lane bounds past now");
                    let actual = {
                        let mut probe = ost.clone();
                        next_batch(&mut probe).0
                    };
                    assert!(
                        bound <= actual,
                        "bound {bound} must not pass the first completion {actual}"
                    );
                    // Re-settling mid-flight tightens the bound monotonically
                    // toward (but never past) the completion.
                    let half = t(actual.as_secs_f64() / 2.0);
                    ost.advance(half);
                    let later = ost.fg_completion_bound().expect("still in flight");
                    assert!(later >= bound && later <= actual);
                }

                #[test]
                fn fg_bound_none_when_idle_or_frozen() {
                    let mut ost = small_ost();
                    assert!(ost.fg_completion_bound().is_none(), "idle has no bound");
                    ost.submit(SimTime::ZERO, RequestId(1), 8 * MIB, OpKind::Write);
                    assert!(ost.fg_completion_bound().is_some());
                    ost.freeze(t(0.5));
                    assert!(
                        ost.fg_completion_bound().is_none(),
                        "a frozen target constrains nothing within a window"
                    );
                    ost.unfreeze(t(1.0));
                    assert!(ost.fg_completion_bound().is_some());
                }

                #[test]
                fn fg_bound_skips_background_streams() {
                    let mut ost = small_ost();
                    // Background interference only: no foreground bound.
                    ost.submit(SimTime::ZERO, RequestId(BG_BIT | 7), 64 * MIB, OpKind::WriteDirect);
                    assert!(ost.next_completion().is_some(), "stream is in flight");
                    assert!(
                        ost.fg_completion_bound().is_none(),
                        "background streams must not constrain the window"
                    );
                    // A foreground arrival restores the bound.
                    ost.submit(t(0.1), RequestId(3), 8 * MIB, OpKind::Write);
                    assert!(ost.fg_completion_bound().is_some());
                }
            }
        };
    }

    ost_suite!(vt_engine, crate::ost::vt::VtOst);
    ost_suite!(reference_engine, crate::ost::reference::RefOst);

    #[test]
    fn alias_selects_engine_by_feature() {
        // Compile-time pin: the default build runs the virtual-time
        // engine; `baseline-engine` pins the reference loop.
        let ost = Ost::new(testbed().ost);
        #[cfg(not(feature = "baseline-engine"))]
        let _: &vt::VtOst = &ost;
        #[cfg(feature = "baseline-engine")]
        let _: &reference::RefOst = &ost;
        assert_eq!(ost.active_streams(), 0);
    }

    #[test]
    fn wake_delay_clamps_non_finite_inputs() {
        assert_eq!(wake_delay(f64::INFINITY).as_secs_f64(), MAX_WAKE_DELAY_SECS);
        assert_eq!(wake_delay(f64::NAN).as_secs_f64(), 0.0);
        assert_eq!(wake_delay(-1.0).as_secs_f64(), 0.0);
        assert!((wake_delay(2.5).as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(wake_delay(1e300).as_secs_f64(), MAX_WAKE_DELAY_SECS);
    }
}
