//! The storage-target (OST) model: a processor-sharing server with a
//! write-back cache, per-stream caps, fixed request overheads, contention
//! penalties, and an external-noise slowdown factor.
//!
//! ## Service model
//!
//! Each in-flight request is a *stream* in one of two lanes:
//!
//! * **Cache lane** — the request fit in the write-back cache at admission.
//!   Streams share the cache-ingest bandwidth (`ingest_eff(k) / k` each,
//!   capped per stream).
//! * **Disk lane** — the cache could not absorb the request (or it is a
//!   read / forced-direct write). Streams share the effective disk
//!   bandwidth (`disk_eff(n) / n` each, capped per stream). `disk_eff`
//!   *declines* as streams are added — this is the paper's internal
//!   interference.
//!
//! Both lanes are additionally scaled by the current external-noise factor
//! (≤ 1), which models other jobs stealing server throughput — the paper's
//! external interference.
//!
//! Every request first burns a fixed `request_overhead` (RPC setup) before
//! transferring bytes.
//!
//! The model is *fluid*: between state changes (arrival, departure, noise
//! flip) every stream progresses linearly, so the OST only needs to
//! "settle" elapsed progress at state changes and can always predict its
//! next completion exactly. The owning `StorageSystem` turns those
//! predictions into discrete events.

use simcore::SimTime;

use crate::params::OstParams;

/// Identifies one outstanding request within the storage system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// What kind of operation a stream is performing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// A write that may use the write-back cache.
    Write,
    /// A write that must bypass the cache (e.g. huge background streams).
    WriteDirect,
    /// A read (always disk lane; reads are not absorbed by the write cache).
    Read,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Lane {
    Cache,
    Disk,
}

#[derive(Clone, Debug)]
struct Stream {
    id: RequestId,
    lane: Lane,
    /// Seconds of fixed overhead still to burn before bytes move.
    overhead_left: f64,
    /// Bytes still to transfer.
    remaining: f64,
    /// Total size (for accounting).
    bytes: u64,
    /// Admission time (for latency accounting).
    submitted: SimTime,
}

/// A completed request, as reported by [`Ost::advance`].
#[derive(Clone, Copy, Debug)]
pub struct OstCompletion {
    /// The request that finished.
    pub id: RequestId,
    /// When it was admitted.
    pub submitted: SimTime,
    /// Size in bytes.
    pub bytes: u64,
}

/// Remaining bytes below this threshold count as finished (absorbs f64
/// drift from repeated settling).
const DONE_EPS: f64 = 0.5;

/// One simulated storage target.
#[derive(Clone, Debug)]
pub struct Ost {
    params: OstParams,
    streams: Vec<Stream>,
    /// Current external slowdown factor in (0, 1].
    noise_factor: f64,
    /// Frozen targets make zero progress (stall-mode failure injection).
    frozen: bool,
    /// Bytes of cache space reserved (admission control): landed bytes
    /// plus bytes still in flight on cache-lane streams.
    cache_reserved: f64,
    /// Bytes that have fully landed in the cache and are eligible to drain
    /// to disk.
    cache_landed: f64,
    last_settle: SimTime,
    n_disk: usize,
    n_cache: usize,
}

impl Ost {
    /// Create an idle OST.
    pub fn new(params: OstParams) -> Self {
        Ost {
            params,
            streams: Vec::new(),
            noise_factor: 1.0,
            frozen: false,
            cache_reserved: 0.0,
            cache_landed: 0.0,
            last_settle: SimTime::ZERO,
            n_disk: 0,
            n_cache: 0,
        }
    }

    /// Number of in-flight streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of in-flight disk-lane streams.
    pub fn disk_streams(&self) -> usize {
        self.n_disk
    }

    /// Bytes of cache space currently reserved (landed + in flight).
    pub fn cache_used(&self) -> u64 {
        self.cache_reserved as u64
    }

    /// Current external-noise slowdown factor.
    pub fn noise_factor(&self) -> f64 {
        self.noise_factor
    }

    fn lane_rate(&self, lane: Lane) -> f64 {
        // External noise scales the whole server, including per-stream
        // request processing — otherwise a high-ingest cache would hide
        // interference behind the stream cap.
        let cap = self.params.stream_cap * self.noise_factor;
        match lane {
            Lane::Disk => {
                let eff = self.params.disk_eff(self.n_disk) * self.noise_factor;
                (eff / self.n_disk.max(1) as f64).min(cap)
            }
            Lane::Cache => {
                let eff = self.params.ingest_eff(self.n_cache) * self.noise_factor;
                (eff / self.n_cache.max(1) as f64).min(cap)
            }
        }
    }

    /// Advance all stream progress (and cache drain) from `last_settle` to
    /// `now`, without removing finished streams.
    fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_settle);
        let dt = (now - self.last_settle).as_secs_f64();
        if self.frozen {
            // A stalled target makes no progress at all (overhead, bytes,
            // cache drain); time simply passes it by.
            self.last_settle = now;
            return;
        }
        if dt > 0.0 {
            let disk_rate = self.lane_rate(Lane::Disk);
            let cache_rate = self.lane_rate(Lane::Cache);
            for s in &mut self.streams {
                let mut t = dt;
                if s.overhead_left > 0.0 {
                    let burn = s.overhead_left.min(t);
                    s.overhead_left -= burn;
                    t -= burn;
                }
                if t > 0.0 {
                    let rate = match s.lane {
                        Lane::Disk => disk_rate,
                        Lane::Cache => cache_rate,
                    };
                    s.remaining -= rate * t;
                }
            }
            // Cache drains to disk only while the disk lane is idle (an
            // approximation: the platters favour foreground traffic), and
            // only bytes that have fully landed are drainable.
            if self.n_disk == 0 && self.cache_landed > 0.0 {
                let drained =
                    (self.params.cache_drain * self.noise_factor * dt).min(self.cache_landed);
                self.cache_landed -= drained;
                self.cache_reserved = (self.cache_reserved - drained).max(0.0);
            }
        }
        self.last_settle = now;
    }

    /// Admit a request. Returns the lane decision implicitly via internal
    /// state; completions surface later through [`Ost::advance`].
    pub fn submit(&mut self, now: SimTime, id: RequestId, bytes: u64, kind: OpKind) {
        self.settle(now);
        let cache_free = self.params.cache_capacity as f64 - self.cache_reserved;
        let lane = match kind {
            // Only requests up to the write-through threshold are cache
            // eligible (Fig. 1: 1-8 MB series ride the cache, 64 MB+ are
            // disk-bound from the start).
            OpKind::Write
                if bytes <= self.params.cache_max_request && (bytes as f64) <= cache_free =>
            {
                Lane::Cache
            }
            OpKind::Write | OpKind::WriteDirect => Lane::Disk,
            OpKind::Read => Lane::Disk,
        };
        match lane {
            Lane::Cache => {
                // Reserve cache space immediately so concurrent bursts see
                // the shrinking headroom.
                self.cache_reserved += bytes as f64;
                self.n_cache += 1;
            }
            Lane::Disk => self.n_disk += 1,
        }
        self.streams.push(Stream {
            id,
            lane,
            overhead_left: self.params.request_overhead,
            remaining: bytes as f64,
            bytes,
            submitted: now,
        });
    }

    /// Move time forward to `now` and return every request that has
    /// finished by then.
    pub fn advance(&mut self, now: SimTime) -> Vec<OstCompletion> {
        self.settle(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.streams.len() {
            if self.streams[i].overhead_left <= 0.0 && self.streams[i].remaining <= DONE_EPS {
                let s = self.streams.swap_remove(i);
                match s.lane {
                    Lane::Cache => {
                        self.n_cache -= 1;
                        self.cache_landed += s.bytes as f64;
                    }
                    Lane::Disk => self.n_disk -= 1,
                }
                done.push(OstCompletion {
                    id: s.id,
                    submitted: s.submitted,
                    bytes: s.bytes,
                });
            } else {
                i += 1;
            }
        }
        // Sort for deterministic completion ordering independent of
        // swap_remove shuffling.
        done.sort_by_key(|c| c.id);
        done
    }

    /// Update the external-noise factor (settling progress first).
    pub fn set_noise(&mut self, now: SimTime, factor: f64) {
        debug_assert!(factor > 0.0 && factor <= 1.0, "noise factor {factor}");
        self.settle(now);
        self.noise_factor = factor;
    }

    /// Freeze the target (stall-mode failure): in-flight and future
    /// streams are held with zero progress until [`Ost::unfreeze`].
    pub fn freeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = true;
    }

    /// Thaw a frozen target; held streams resume from where they stopped.
    pub fn unfreeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = false;
    }

    /// Whether the target is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Error-mode failure: abort every in-flight stream, returning their
    /// request ids so the owner can surface error completions. Cache state
    /// is wiped (the disk is gone; recovery brings back an empty target).
    pub fn fail_all(&mut self, now: SimTime) -> Vec<RequestId> {
        self.settle(now);
        let ids: Vec<RequestId> = self.streams.iter().map(|s| s.id).collect();
        self.streams.clear();
        self.n_disk = 0;
        self.n_cache = 0;
        self.cache_reserved = 0.0;
        self.cache_landed = 0.0;
        ids
    }

    /// Predict the absolute time of the next stream completion, given the
    /// current state. `None` if idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.streams.is_empty() || self.frozen {
            return None;
        }
        let disk_rate = self.lane_rate(Lane::Disk);
        let cache_rate = self.lane_rate(Lane::Cache);
        let mut best = f64::INFINITY;
        for s in &self.streams {
            let rate = match s.lane {
                Lane::Disk => disk_rate,
                Lane::Cache => cache_rate,
            };
            let t = s.overhead_left + (s.remaining.max(0.0)) / rate;
            if t < best {
                best = t;
            }
        }
        Some(
            self.last_settle
                .saturating_add(simcore::SimDuration::from_secs_f64(best)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::testbed;
    use simcore::units::MIB;
    use simcore::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn small_ost() -> Ost {
        Ost::new(testbed().ost)
    }

    /// Drive an OST holding only the given submission to completion and
    /// return the completion time.
    fn run_single(ost: &mut Ost) -> SimTime {
        let done_at = ost.next_completion().expect("stream in flight");
        let done = ost.advance(done_at);
        assert_eq!(done.len(), 1);
        done_at
    }

    #[test]
    fn single_cache_write_takes_overhead_plus_ingest_time() {
        let p = testbed().ost;
        let mut ost = Ost::new(p.clone());
        let bytes = 8 * MIB;
        ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        let done_at = run_single(&mut ost);
        let rate = p.cache_ingest_peak.min(p.stream_cap);
        let expect = p.request_overhead + bytes as f64 / rate;
        assert!(
            (done_at.as_secs_f64() - expect).abs() < 1e-6,
            "got {done_at}, expected {expect}"
        );
    }

    #[test]
    fn oversized_write_goes_to_disk_lane() {
        let p = testbed().ost; // 64 MiB cache
        let mut ost = Ost::new(p.clone());
        let bytes = 128 * MIB;
        ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        assert_eq!(ost.disk_streams(), 1);
        let done_at = run_single(&mut ost);
        let rate = p.disk_peak.min(p.stream_cap);
        let expect = p.request_overhead + bytes as f64 / rate;
        assert!((done_at.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn read_is_disk_lane() {
        let mut ost = small_ost();
        ost.submit(SimTime::ZERO, RequestId(1), MIB, OpKind::Read);
        assert_eq!(ost.disk_streams(), 1);
        assert_eq!(ost.cache_used(), 0);
    }

    #[test]
    fn write_direct_bypasses_cache() {
        let mut ost = small_ost();
        ost.submit(SimTime::ZERO, RequestId(1), MIB, OpKind::WriteDirect);
        assert_eq!(ost.disk_streams(), 1);
        assert_eq!(ost.cache_used(), 0);
    }

    #[test]
    fn cache_reservation_fills_then_spills() {
        let p = testbed().ost; // 64 MiB cache
        let mut ost = Ost::new(p);
        // Two 32 MiB writes fill the cache exactly.
        ost.submit(SimTime::ZERO, RequestId(1), 32 * MIB, OpKind::Write);
        ost.submit(SimTime::ZERO, RequestId(2), 32 * MIB, OpKind::Write);
        assert_eq!(ost.disk_streams(), 0);
        // Third write cannot fit: disk lane.
        ost.submit(SimTime::ZERO, RequestId(3), MIB, OpKind::Write);
        assert_eq!(ost.disk_streams(), 1);
    }

    #[test]
    fn cache_drains_when_disk_idle() {
        let p = testbed().ost;
        let drain = p.cache_drain;
        let mut ost = Ost::new(p);
        ost.submit(SimTime::ZERO, RequestId(1), 32 * MIB, OpKind::Write);
        let done_at = run_single(&mut ost);
        // Cache holds the written bytes minus whatever drained during the
        // (disk-idle) ingest itself.
        let held = ost.cache_used();
        assert!(held > 0 && held <= 32 * MIB, "cache holds {held}");
        // Wait long enough for the cache to fully drain.
        let wait = 32.0 * MIB as f64 / drain + 0.1;
        let later = done_at + SimDuration::from_secs_f64(wait);
        ost.advance(later);
        assert_eq!(ost.cache_used(), 0);
    }

    #[test]
    fn two_disk_streams_share_bandwidth() {
        let p = testbed().ost;
        let mut ost = Ost::new(p.clone());
        let bytes = 128 * MIB; // > cache, disk lane
        ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        ost.submit(SimTime::ZERO, RequestId(2), bytes, OpKind::Write);
        let done_at = ost.next_completion().unwrap();
        let per_stream = (p.disk_eff(2) / 2.0).min(p.stream_cap);
        let expect = p.request_overhead + bytes as f64 / per_stream;
        assert!(
            (done_at.as_secs_f64() - expect).abs() < 1e-6,
            "got {done_at} expected {expect}"
        );
        // Both complete together.
        assert_eq!(ost.advance(done_at).len(), 2);
    }

    #[test]
    fn contention_slows_per_stream_service() {
        let p = testbed().ost;
        // One stream alone.
        let mut a = Ost::new(p.clone());
        a.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::Write);
        let alone = a.next_completion().unwrap();
        // Same stream with 7 competitors.
        let mut b = Ost::new(p);
        for i in 0..8 {
            b.submit(SimTime::ZERO, RequestId(i), 128 * MIB, OpKind::Write);
        }
        let shared = b.next_completion().unwrap();
        assert!(
            shared.as_secs_f64() > 4.0 * alone.as_secs_f64(),
            "8-way sharing should be much slower: alone {alone}, shared {shared}"
        );
    }

    #[test]
    fn late_arrival_slows_in_flight_stream() {
        let p = testbed().ost;
        let mut ost = Ost::new(p.clone());
        let bytes = 128 * MIB;
        ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        let solo_finish = ost.next_completion().unwrap();
        // Halfway through, a second stream arrives.
        let half = t(solo_finish.as_secs_f64() / 2.0);
        ost.submit(half, RequestId(2), bytes, OpKind::Write);
        let new_finish = ost.next_completion().unwrap();
        assert!(
            new_finish > solo_finish,
            "arrival must delay the first stream"
        );
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let p = testbed().ost;
        let mut ost = Ost::new(p.clone());
        ost.submit(SimTime::ZERO, RequestId(1), 16 * MIB, OpKind::WriteDirect);
        ost.submit(SimTime::ZERO, RequestId(2), 256 * MIB, OpKind::WriteDirect);
        // Predicted finish of the big stream under 2-way sharing.
        let shared_rate = (p.disk_eff(2) / 2.0).min(p.stream_cap);
        let naive_finish = p.request_overhead + 256.0 * MIB as f64 / shared_rate;
        // Let the small one finish.
        let first = ost.next_completion().unwrap();
        let done = ost.advance(first);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId(1));
        // The survivor now runs faster than naive 2-way prediction.
        let survivor_finish = ost.next_completion().unwrap();
        assert!(
            survivor_finish.as_secs_f64() < naive_finish,
            "survivor {survivor_finish} vs naive {naive_finish}"
        );
    }

    #[test]
    fn noise_slows_service() {
        let p = testbed().ost;
        let bytes = 128 * MIB;
        let mut quiet = Ost::new(p.clone());
        quiet.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        let q = quiet.next_completion().unwrap();

        let mut noisy = Ost::new(p);
        noisy.set_noise(SimTime::ZERO, 0.25);
        noisy.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        let n = noisy.next_completion().unwrap();
        assert!(
            n.as_secs_f64() > 3.0 * q.as_secs_f64(),
            "4x slowdown expected-ish: quiet {q}, noisy {n}"
        );
    }

    #[test]
    fn mid_flight_noise_change_replans() {
        let p = testbed().ost;
        let mut ost = Ost::new(p);
        let bytes = 256 * MIB;
        ost.submit(SimTime::ZERO, RequestId(1), bytes, OpKind::Write);
        let before = ost.next_completion().unwrap();
        // Halfway, the OST becomes very slow.
        let half = t(before.as_secs_f64() / 2.0);
        ost.set_noise(half, 0.1);
        let after = ost.next_completion().unwrap();
        assert!(after > before, "slowdown must push completion out");
        // Recovery speeds it back up (but can't beat the original).
        ost.set_noise(t(before.as_secs_f64() * 0.75), 1.0);
        let recovered = ost.next_completion().unwrap();
        assert!(recovered < after);
        assert!(recovered > before);
    }

    #[test]
    fn completions_preserve_metadata() {
        let mut ost = small_ost();
        ost.submit(t(1.0), RequestId(42), 2 * MIB, OpKind::Write);
        let at = ost.next_completion().unwrap();
        let done = ost.advance(at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId(42));
        assert_eq!(done[0].bytes, 2 * MIB);
        assert_eq!(done[0].submitted, t(1.0));
    }

    #[test]
    fn idle_ost_has_no_next_completion() {
        let ost = small_ost();
        assert!(ost.next_completion().is_none());
        assert_eq!(ost.active_streams(), 0);
    }

    #[test]
    fn overhead_dominates_tiny_writes() {
        let p = testbed().ost;
        let mut ost = Ost::new(p.clone());
        ost.submit(SimTime::ZERO, RequestId(1), 1, OpKind::Write);
        let at = ost.next_completion().unwrap();
        assert!(at.as_secs_f64() >= p.request_overhead);
    }

    #[test]
    fn frozen_ost_makes_no_progress_then_resumes() {
        let mut ost = small_ost();
        ost.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::Write);
        let planned = ost.next_completion().unwrap();
        let half = t(planned.as_secs_f64() / 2.0);
        ost.freeze(half);
        assert!(ost.next_completion().is_none(), "frozen OST predicts nothing");
        assert!(ost.advance(planned).is_empty(), "no completions while frozen");
        // Thaw after a long stall: remaining work picks up where it left off.
        let thaw = t(planned.as_secs_f64() * 3.0);
        ost.unfreeze(thaw);
        let resumed = ost.next_completion().unwrap();
        let expect = thaw.as_secs_f64() + planned.as_secs_f64() / 2.0;
        assert!(
            (resumed.as_secs_f64() - expect).abs() < 1e-6,
            "resumed {resumed}, expected ~{expect}"
        );
    }

    #[test]
    fn fail_all_aborts_streams_and_wipes_cache() {
        let mut ost = small_ost();
        ost.submit(SimTime::ZERO, RequestId(1), 8 * MIB, OpKind::Write);
        ost.submit(SimTime::ZERO, RequestId(2), 128 * MIB, OpKind::Write);
        let ids = ost.fail_all(t(0.1));
        assert_eq!(ids.len(), 2);
        assert_eq!(ost.active_streams(), 0);
        assert_eq!(ost.cache_used(), 0);
        assert!(ost.next_completion().is_none());
        // The target accepts fresh work afterwards.
        ost.submit(t(0.2), RequestId(3), MIB, OpKind::Write);
        assert!(ost.next_completion().is_some());
    }

    #[test]
    fn many_streams_complete_exactly_once() {
        let mut ost = small_ost();
        for i in 0..50u64 {
            ost.submit(SimTime::ZERO, RequestId(i), (i + 1) * 100_000, OpKind::WriteDirect);
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(at) = ost.next_completion() {
            for c in ost.advance(at) {
                assert!(seen.insert(c.id), "duplicate completion {:?}", c.id);
            }
        }
        assert_eq!(seen.len(), 50);
        assert_eq!(ost.active_streams(), 0);
    }
}
