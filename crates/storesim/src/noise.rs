//! Per-OST micro-jitter: a shallow Markov-modulated slowdown.
//!
//! This is the *small* component of external interference: background
//! scrubbing, RAID activity, uneven placement. It desynchronises targets
//! so no two OSTs are ever exactly alike, but its depths are shallow
//! (≤ ~1.4×). The paper's big transients — one target suddenly 3–4×
//! slower — come from the competing-job model in [`crate::jobs`].
//!
//! Dwell times in each state are exponential; initial state is drawn from
//! the stationary distribution so measurements need no warm-up.

use simcore::{Rng, SimDuration};

use crate::params::MicroNoiseParams;

/// State of one OST's micro-jitter process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NoiseState {
    /// No extra activity on this target.
    Quiet,
    /// Background activity shaving some throughput.
    Busy,
}

/// One OST's micro-jitter process.
#[derive(Clone, Debug)]
pub struct NoiseProcess {
    params: MicroNoiseParams,
    state: NoiseState,
    factor: f64,
}

impl NoiseProcess {
    /// Create a process in its stationary distribution, returning the
    /// process and the delay until its first transition. Disabled jitter
    /// returns a quiet process with no transitions (`None`).
    pub fn new(params: &MicroNoiseParams, rng: &mut Rng) -> (Self, Option<SimDuration>) {
        if !params.enabled {
            return (
                NoiseProcess {
                    params: params.clone(),
                    state: NoiseState::Quiet,
                    factor: 1.0,
                },
                None,
            );
        }
        let p_busy = params.mean_busy / (params.mean_busy + params.mean_quiet);
        let (state, factor) = if rng.chance(p_busy) {
            (NoiseState::Busy, Self::draw_factor(params, rng))
        } else {
            (NoiseState::Quiet, 1.0)
        };
        let dwell = match state {
            NoiseState::Quiet => params.mean_quiet,
            NoiseState::Busy => params.mean_busy,
        };
        let delay = SimDuration::from_secs_f64(rng.exp(dwell));
        (
            NoiseProcess {
                params: params.clone(),
                state,
                factor,
            },
            Some(delay),
        )
    }

    fn draw_factor(params: &MicroNoiseParams, rng: &mut Rng) -> f64 {
        if params.max_depth <= 1.0 {
            return 1.0;
        }
        let depth = rng.bounded_pareto(params.depth_shape, 1.0, params.max_depth);
        (1.0 / depth).clamp(1.0 / params.max_depth, 1.0)
    }

    /// Flip to the other state; returns the new slowdown factor and the
    /// delay until the next transition.
    pub fn transition(&mut self, rng: &mut Rng) -> (f64, SimDuration) {
        match self.state {
            NoiseState::Quiet => {
                self.state = NoiseState::Busy;
                self.factor = Self::draw_factor(&self.params, rng);
                (
                    self.factor,
                    SimDuration::from_secs_f64(rng.exp(self.params.mean_busy)),
                )
            }
            NoiseState::Busy => {
                self.state = NoiseState::Quiet;
                self.factor = 1.0;
                (
                    self.factor,
                    SimDuration::from_secs_f64(rng.exp(self.params.mean_quiet)),
                )
            }
        }
    }

    /// Current slowdown factor in (0, 1].
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Current state.
    pub fn state(&self) -> NoiseState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{jaguar, NoiseParams};
    use simcore::Rng;

    fn micro() -> MicroNoiseParams {
        jaguar().noise.micro
    }

    #[test]
    fn disabled_noise_is_quiet_forever() {
        let mut rng = Rng::new(1);
        let (p, delay) = NoiseProcess::new(&NoiseParams::quiet().micro, &mut rng);
        assert_eq!(p.state(), NoiseState::Quiet);
        assert_eq!(p.factor(), 1.0);
        assert!(delay.is_none());
    }

    #[test]
    fn factors_stay_shallow() {
        let params = micro();
        let mut rng = Rng::new(2);
        let (mut p, _) = NoiseProcess::new(&params, &mut rng);
        for _ in 0..1000 {
            let (f, _) = p.transition(&mut rng);
            assert!(f > 0.0 && f <= 1.0, "factor {f}");
            assert!(
                f >= 1.0 / params.max_depth - 1e-9,
                "micro jitter must stay shallow: {f}"
            );
        }
    }

    #[test]
    fn alternates_states() {
        let params = micro();
        let mut rng = Rng::new(3);
        let (mut p, _) = NoiseProcess::new(&params, &mut rng);
        let first = p.state();
        p.transition(&mut rng);
        assert_ne!(p.state(), first);
        p.transition(&mut rng);
        assert_eq!(p.state(), first);
    }

    #[test]
    fn quiet_state_has_unit_factor() {
        let params = micro();
        let mut rng = Rng::new(4);
        let (mut p, _) = NoiseProcess::new(&params, &mut rng);
        for _ in 0..10 {
            p.transition(&mut rng);
            if p.state() == NoiseState::Quiet {
                assert_eq!(p.factor(), 1.0);
            } else {
                assert!(p.factor() < 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn stationary_initialisation_mixes_states() {
        let params = micro();
        let mut quiet = 0;
        let mut busy = 0;
        for seed in 0..500 {
            let mut rng = Rng::new(seed);
            let (p, _) = NoiseProcess::new(&params, &mut rng);
            match p.state() {
                NoiseState::Quiet => quiet += 1,
                NoiseState::Busy => busy += 1,
            }
        }
        // Stationary busy probability = 20/(20+45) ≈ 0.31.
        assert!(busy > 80 && quiet > 250, "quiet {quiet} busy {busy}");
    }

    #[test]
    fn dwell_times_match_means_roughly() {
        let params = micro();
        let mut rng = Rng::new(8);
        let (mut p, _) = NoiseProcess::new(&params, &mut rng);
        let mut busy_sum = 0.0;
        let mut busy_n = 0;
        for _ in 0..4000 {
            let (_, dwell) = p.transition(&mut rng);
            if p.state() == NoiseState::Busy {
                busy_sum += dwell.as_secs_f64();
                busy_n += 1;
            }
        }
        let mean = busy_sum / busy_n as f64;
        assert!(
            (mean - params.mean_busy).abs() < 0.15 * params.mean_busy,
            "busy dwell mean {mean}"
        );
    }
}
