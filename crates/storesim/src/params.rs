//! Model parameters and machine presets.
//!
//! Every constant that shapes simulated behaviour lives here, with the
//! paper-facing justification next to it. Presets mirror the three machines
//! of the paper's Section II:
//!
//! * [`jaguar`] — ORNL Jaguar XT5 scratch: 672-OST Lustre shared across the
//!   centre; busy production noise.
//! * [`franklin`] — NERSC Franklin XT4: 96-OST Lustre, also production-busy.
//! * [`xtp`] — Sandia XTP: 40-target PanFS, non-production (quiet unless a
//!   competing job is injected), low internal contention penalty.
//! * [`testbed`] — a small, fast-to-simulate configuration for unit tests.

use minijson::{json, Value};
use simcore::units::{Bandwidth, GIB, MIB};
use simcore::SimDuration;

// JSON conversions are hand-written against minijson (the workspace
// builds offline, so no serde). `from_json` is strict: a missing or
// mistyped field is an error naming the field.

fn jf(v: &Value, k: &str) -> Result<f64, String> {
    v.get(k)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{k}`"))
}

fn ju(v: &Value, k: &str) -> Result<u64, String> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{k}`"))
}

fn jus(v: &Value, k: &str) -> Result<usize, String> {
    v.get(k)
        .and_then(Value::as_usize)
        .ok_or_else(|| format!("missing or non-integer field `{k}`"))
}

fn jb(v: &Value, k: &str) -> Result<bool, String> {
    v.get(k)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field `{k}`"))
}

fn js(v: &Value, k: &str) -> Result<String, String> {
    v.get(k)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{k}`"))
}

fn jobj<'v>(v: &'v Value, k: &str) -> Result<&'v Value, String> {
    v.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

/// Parameters of a single storage target (OST / StorageBlade).
#[derive(Clone, Debug)]
pub struct OstParams {
    /// Peak sequential write bandwidth of the backing storage, bytes/sec.
    /// Paper §I: "per storage target theoretical maximum performance of
    /// around 180 MB/sec"; sustained effective peak is lower.
    pub disk_peak: f64,
    /// Per-stream client-side cap (single writer cannot saturate a target
    /// through one connection), bytes/sec.
    pub stream_cap: f64,
    /// Contention penalty: effective disk bandwidth with `n` concurrent
    /// streams is `disk_peak / (1 + alpha * (n-1)^gamma)`. Models
    /// seek/interleave losses that make aggregate bandwidth *decline* past a
    /// few writers per target (paper Fig. 1).
    pub contention_alpha: f64,
    /// Exponent of the contention penalty.
    pub contention_gamma: f64,
    /// Write-back cache capacity, bytes. Paper §IV-A: bursts well under the
    /// ~2 GB cache never touch the disk regime.
    pub cache_capacity: u64,
    /// Largest single request the write-back cache will absorb. Paper
    /// Fig. 1: the 1 MB and 8 MB series benefit from OST caches while
    /// 64 MB+ behave disk-bound from the start — large transfers are
    /// written through.
    pub cache_max_request: u64,
    /// Peak cache-ingest bandwidth (absorbing writes into cache), bytes/sec.
    pub cache_ingest_peak: f64,
    /// Mild ingest contention: ingest with `k` concurrent cache streams is
    /// `cache_ingest_peak / (1 + ingest_alpha * (k-1))`.
    pub ingest_alpha: f64,
    /// Cache drain rate to disk when the disk is otherwise idle, bytes/sec.
    pub cache_drain: f64,
    /// Fixed per-request overhead (RPC setup, allocation), seconds. Hits
    /// small writes hardest — why per-writer bandwidth in Fig. 1(b) falls
    /// with writer count even in the cache regime.
    pub request_overhead: f64,
}

impl OstParams {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "disk_peak": self.disk_peak,
            "stream_cap": self.stream_cap,
            "contention_alpha": self.contention_alpha,
            "contention_gamma": self.contention_gamma,
            "cache_capacity": self.cache_capacity,
            "cache_max_request": self.cache_max_request,
            "cache_ingest_peak": self.cache_ingest_peak,
            "ingest_alpha": self.ingest_alpha,
            "cache_drain": self.cache_drain,
            "request_overhead": self.request_overhead,
        })
    }

    /// Parse from a JSON object produced by [`OstParams::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(OstParams {
            disk_peak: jf(v, "disk_peak")?,
            stream_cap: jf(v, "stream_cap")?,
            contention_alpha: jf(v, "contention_alpha")?,
            contention_gamma: jf(v, "contention_gamma")?,
            cache_capacity: ju(v, "cache_capacity")?,
            cache_max_request: ju(v, "cache_max_request")?,
            cache_ingest_peak: jf(v, "cache_ingest_peak")?,
            ingest_alpha: jf(v, "ingest_alpha")?,
            cache_drain: jf(v, "cache_drain")?,
            request_overhead: jf(v, "request_overhead")?,
        })
    }

    /// Effective disk bandwidth with `n` concurrent disk streams, before
    /// external-noise scaling.
    pub fn disk_eff(&self, n: usize) -> f64 {
        if n == 0 {
            return self.disk_peak;
        }
        self.disk_peak / (1.0 + self.contention_alpha * ((n - 1) as f64).powf(self.contention_gamma))
    }

    /// Effective cache-ingest bandwidth with `k` concurrent cache streams.
    pub fn ingest_eff(&self, k: usize) -> f64 {
        if k == 0 {
            return self.cache_ingest_peak;
        }
        self.cache_ingest_peak / (1.0 + self.ingest_alpha * (k - 1) as f64)
    }
}

/// Per-OST micro-jitter: a shallow two-state Markov modulation that
/// desynchronises otherwise-identical targets (RAID rebuilds, scrubbing,
/// uneven placement). Depths are small; the big transients come from
/// [`JobNoiseParams`].
#[derive(Clone, Debug)]
pub struct MicroNoiseParams {
    /// Whether micro-jitter is active.
    pub enabled: bool,
    /// Mean dwell in the quiet state, seconds.
    pub mean_quiet: f64,
    /// Mean dwell in the jittery state, seconds.
    pub mean_busy: f64,
    /// Pareto shape of the (shallow) slowdown depth.
    pub depth_shape: f64,
    /// Maximum micro slowdown depth (e.g. 1.35 ⇒ at worst 74 % speed).
    pub max_depth: f64,
}

impl MicroNoiseParams {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "enabled": self.enabled,
            "mean_quiet": self.mean_quiet,
            "mean_busy": self.mean_busy,
            "depth_shape": self.depth_shape,
            "max_depth": self.max_depth,
        })
    }

    /// Parse from a JSON object produced by [`MicroNoiseParams::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(MicroNoiseParams {
            enabled: jb(v, "enabled")?,
            mean_quiet: jf(v, "mean_quiet")?,
            mean_busy: jf(v, "mean_busy")?,
            depth_shape: jf(v, "depth_shape")?,
            max_depth: jf(v, "max_depth")?,
        })
    }
}

/// Competing-job load: Poisson arrivals of other applications'
/// IO phases, each covering a stripe-width-sized contiguous OST range for
/// an exponential duration with a bounded-Pareto depth. This is the
/// paper's external interference: transient, localized, sometimes deep
/// (imbalance 3.44), often absent (imbalance 1.18 three minutes later).
#[derive(Clone, Debug)]
pub struct JobNoiseParams {
    /// Whether competing jobs are generated.
    pub enabled: bool,
    /// Mean time between job arrivals, seconds.
    pub mean_interarrival: f64,
    /// Mean duration of one job's IO phase, seconds.
    pub mean_duration: f64,
    /// Pareto shape of the slowdown depth (higher = lighter tail).
    pub depth_shape: f64,
    /// Minimum slowdown depth of an episode.
    pub min_depth: f64,
    /// Maximum slowdown depth.
    pub max_depth: f64,
    /// Stripe widths competing jobs use (sampled uniformly).
    pub stripe_choices: Vec<u32>,
}

impl JobNoiseParams {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "enabled": self.enabled,
            "mean_interarrival": self.mean_interarrival,
            "mean_duration": self.mean_duration,
            "depth_shape": self.depth_shape,
            "min_depth": self.min_depth,
            "max_depth": self.max_depth,
            "stripe_choices": self.stripe_choices.clone(),
        })
    }

    /// Parse from a JSON object produced by [`JobNoiseParams::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let stripes = v
            .get("stripe_choices")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing or non-array field `stripe_choices`".to_string())?
            .iter()
            .map(|x| {
                x.as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| "non-integer stripe choice".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        Ok(JobNoiseParams {
            enabled: jb(v, "enabled")?,
            mean_interarrival: jf(v, "mean_interarrival")?,
            mean_duration: jf(v, "mean_duration")?,
            depth_shape: jf(v, "depth_shape")?,
            min_depth: jf(v, "min_depth")?,
            max_depth: jf(v, "max_depth")?,
            stripe_choices: stripes,
        })
    }
}

/// External-interference noise: micro-jitter plus competing jobs.
#[derive(Clone, Debug)]
pub struct NoiseParams {
    /// Shallow per-OST jitter.
    pub micro: MicroNoiseParams,
    /// Job-structured transients.
    pub jobs: JobNoiseParams,
}

impl NoiseParams {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "micro": self.micro.to_json(),
            "jobs": self.jobs.to_json(),
        })
    }

    /// Parse from a JSON object produced by [`NoiseParams::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(NoiseParams {
            micro: MicroNoiseParams::from_json(jobj(v, "micro")?)?,
            jobs: JobNoiseParams::from_json(jobj(v, "jobs")?)?,
        })
    }

    /// A completely quiet system (unit tests, controlled experiments).
    pub fn quiet() -> Self {
        NoiseParams {
            micro: MicroNoiseParams {
                enabled: false,
                mean_quiet: 1.0,
                mean_busy: 1.0,
                depth_shape: 1.0,
                max_depth: 1.0,
            },
            jobs: JobNoiseParams {
                enabled: false,
                mean_interarrival: 0.0,
                mean_duration: 0.0,
                depth_shape: 1.0,
                min_depth: 1.0,
                max_depth: 1.0,
                stripe_choices: vec![4],
            },
        }
    }
}

/// Metadata server parameters.
#[derive(Clone, Debug)]
pub struct MdsParams {
    /// Base service time of one open/create, seconds.
    pub open_base: f64,
    /// Additional service time per already-queued operation, seconds —
    /// models the serialisation the paper's stagger-open technique avoids.
    pub open_per_queued: f64,
    /// Base service time of a close, seconds.
    pub close_base: f64,
}

impl MdsParams {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "open_base": self.open_base,
            "open_per_queued": self.open_per_queued,
            "close_base": self.close_base,
        })
    }

    /// Parse from a JSON object produced by [`MdsParams::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(MdsParams {
            open_base: jf(v, "open_base")?,
            open_per_queued: jf(v, "open_per_queued")?,
            close_base: jf(v, "close_base")?,
        })
    }
}

/// A whole-machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name for tables.
    pub name: String,
    /// Number of storage targets.
    pub ost_count: usize,
    /// Maximum stripe count for a single file (Lustre 1.6 limit: 160).
    pub max_stripe_count: usize,
    /// Default stripe count for newly created files (Jaguar default: 4).
    pub default_stripe_count: usize,
    /// Stripe width, bytes.
    pub stripe_size: u64,
    /// Per-target parameters.
    pub ost: OstParams,
    /// External-interference noise.
    pub noise: NoiseParams,
    /// Metadata server.
    pub mds: MdsParams,
    /// One-way latency of a control message between ranks, seconds.
    pub msg_latency: f64,
    /// Bandwidth applied to message payload sizes, bytes/sec.
    pub msg_bandwidth: f64,
    /// Cores per compute node (role placement groups consecutive ranks;
    /// Jaguar XT5: 12).
    pub cores_per_node: usize,
}

impl MachineConfig {
    /// Convert to a JSON object (artifact storage alongside results).
    pub fn to_json(&self) -> Value {
        json!({
            "name": self.name.clone(),
            "ost_count": self.ost_count,
            "max_stripe_count": self.max_stripe_count,
            "default_stripe_count": self.default_stripe_count,
            "stripe_size": self.stripe_size,
            "ost": self.ost.to_json(),
            "noise": self.noise.to_json(),
            "mds": self.mds.to_json(),
            "msg_latency": self.msg_latency,
            "msg_bandwidth": self.msg_bandwidth,
            "cores_per_node": self.cores_per_node,
        })
    }

    /// Parse from a JSON object produced by [`MachineConfig::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(MachineConfig {
            name: js(v, "name")?,
            ost_count: jus(v, "ost_count")?,
            max_stripe_count: jus(v, "max_stripe_count")?,
            default_stripe_count: jus(v, "default_stripe_count")?,
            stripe_size: ju(v, "stripe_size")?,
            ost: OstParams::from_json(jobj(v, "ost")?)?,
            noise: NoiseParams::from_json(jobj(v, "noise")?)?,
            mds: MdsParams::from_json(jobj(v, "mds")?)?,
            msg_latency: jf(v, "msg_latency")?,
            msg_bandwidth: jf(v, "msg_bandwidth")?,
            cores_per_node: jus(v, "cores_per_node")?,
        })
    }

    /// Theoretical aggregate peak (all OSTs at disk peak), for table
    /// headers.
    pub fn theoretical_peak(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.ost.disk_peak * self.ost_count as f64)
    }

    /// Convenience: typical duration to write `bytes` at the theoretical
    /// peak (lower bound for sanity checks).
    pub fn floor_time(&self, bytes: u64) -> SimDuration {
        self.theoretical_peak().time_for(bytes)
    }
}

fn lustre_ost() -> OstParams {
    OstParams {
        disk_peak: 140.0 * MIB as f64,
        stream_cap: 110.0 * MIB as f64,
        contention_alpha: 0.05,
        contention_gamma: 0.8,
        cache_capacity: 2 * GIB,
        cache_max_request: 16 * MIB,
        cache_ingest_peak: 170.0 * MIB as f64,
        ingest_alpha: 0.006,
        cache_drain: 120.0 * MIB as f64,
        request_overhead: 0.0015,
    }
}

fn production_micro() -> MicroNoiseParams {
    MicroNoiseParams {
        enabled: true,
        mean_quiet: 45.0,
        mean_busy: 20.0,
        depth_shape: 2.2,
        max_depth: 1.4,
    }
}

/// ORNL Jaguar XT5 + 672-OST Lustre scratch (shared, production-busy).
pub fn jaguar() -> MachineConfig {
    MachineConfig {
        name: "Jaguar/Lustre".to_string(),
        ost_count: 672,
        max_stripe_count: 160,
        default_stripe_count: 4,
        stripe_size: MIB,
        ost: lustre_ost(),
        noise: NoiseParams {
            micro: production_micro(),
            jobs: JobNoiseParams {
                enabled: true,
                mean_interarrival: 230.0,
                mean_duration: 300.0,
                depth_shape: 1.1,
                min_depth: 1.5,
                max_depth: 14.0,
                stripe_choices: vec![4, 4, 8, 8, 16, 32, 64, 160],
            },
        },
        mds: MdsParams {
            open_base: 0.00008,
            open_per_queued: 0.00003,
            close_base: 0.00005,
        },
        msg_latency: 6.0e-6,
        msg_bandwidth: 1.6e9,
        cores_per_node: 12,
    }
}

/// The full Jaguar machine for whole-system campaigns: all 672 OSTs with
/// the Lustre 160-OST single-file stripe cap, production noise.
///
/// Scale parameters are identical to [`jaguar`] (delegates to it, so the
/// two can never drift); the distinct preset exists as the named target
/// for the 16k-rank scale campaigns in `workloads::scale`, which only
/// became tractable with the virtual-time OST engine.
pub fn jaguar_full() -> MachineConfig {
    let mut cfg = jaguar();
    cfg.name = "Jaguar/Lustre (full machine)".to_string();
    cfg
}

/// NERSC Franklin XT4 + 96-OST Lustre scratch (production-busy).
pub fn franklin() -> MachineConfig {
    MachineConfig {
        name: "Franklin/Lustre".to_string(),
        ost_count: 96,
        max_stripe_count: 96,
        default_stripe_count: 4,
        stripe_size: MIB,
        ost: lustre_ost(),
        noise: NoiseParams {
            micro: production_micro(),
            jobs: JobNoiseParams {
                enabled: true,
                mean_interarrival: 200.0,
                mean_duration: 260.0,
                depth_shape: 1.25,
                min_depth: 1.4,
                max_depth: 10.0,
                stripe_choices: vec![4, 4, 8, 16, 32, 96],
            },
        },
        mds: MdsParams {
            open_base: 0.00025,
            open_per_queued: 0.00008,
            close_base: 0.0001,
        },
        msg_latency: 8.0e-6,
        msg_bandwidth: 1.2e9,
        cores_per_node: 4,
    }
}

/// Sandia XTP + 40-blade PanFS: small, quiet (non-production), and with a
/// much gentler internal contention curve (paper §II-1 observed <5 %
/// degradation). PanFS has no Lustre-style single-file stripe limit that
/// matters at this scale.
pub fn xtp() -> MachineConfig {
    MachineConfig {
        name: "XTP/PanFS".to_string(),
        ost_count: 40,
        max_stripe_count: 40,
        default_stripe_count: 4,
        stripe_size: MIB,
        ost: OstParams {
            disk_peak: 150.0 * MIB as f64,
            stream_cap: 115.0 * MIB as f64,
            contention_alpha: 0.0012,
            contention_gamma: 1.1,
            cache_capacity: 4 * GIB,
            cache_max_request: 16 * MIB,
            cache_ingest_peak: 190.0 * MIB as f64,
            ingest_alpha: 0.004,
            cache_drain: 140.0 * MIB as f64,
            request_overhead: 0.0025,
        },
        noise: NoiseParams {
            // Non-production: shallow micro-jitter only; interference is
            // injected explicitly when an experiment wants it.
            micro: MicroNoiseParams {
                enabled: true,
                mean_quiet: 60.0,
                mean_busy: 15.0,
                depth_shape: 2.5,
                max_depth: 1.2,
            },
            jobs: JobNoiseParams {
                enabled: false,
                mean_interarrival: 0.0,
                mean_duration: 0.0,
                depth_shape: 1.0,
                min_depth: 1.0,
                max_depth: 1.0,
                stripe_choices: vec![4],
            },
        },
        mds: MdsParams {
            open_base: 0.0002,
            open_per_queued: 0.00006,
            close_base: 0.00008,
        },
        msg_latency: 6.0e-6,
        msg_bandwidth: 1.6e9,
        cores_per_node: 12,
    }
}

/// Sandia XTP while a second IOR job runs alongside (Table I's "XTP with
/// Int." row): the competing job's IO phases appear as job-noise episodes
/// striped over 8 targets, alternating with idle windows — which is what
/// makes repeated samples vary by ~40 % instead of uniformly slowing
/// them.
pub fn xtp_with_competing_ior() -> MachineConfig {
    let mut cfg = xtp();
    cfg.name = "XTP/PanFS (with Int.)".to_string();
    cfg.noise.jobs = JobNoiseParams {
        enabled: true,
        mean_interarrival: 90.0,
        mean_duration: 55.0,
        depth_shape: 1.3,
        min_depth: 1.8,
        max_depth: 7.0,
        stripe_choices: vec![8],
    };
    cfg
}

/// A BlueGene/P-class machine with a GPFS file system — the paper's §VI
/// future-work target ("perhaps, GPFS on a BlueGene/P machine"). GPFS
/// NSD servers behave like fewer, fatter targets with no Lustre-style
/// single-file stripe limit and dedicated IO-forwarding nodes in front
/// (so per-stream caps are lower but contention is gentler).
pub fn bluegene_gpfs() -> MachineConfig {
    MachineConfig {
        name: "BG-P/GPFS".to_string(),
        ost_count: 128,
        max_stripe_count: 128,
        default_stripe_count: 8,
        stripe_size: 4 * MIB,
        ost: OstParams {
            disk_peak: 300.0 * MIB as f64,
            stream_cap: 60.0 * MIB as f64,
            contention_alpha: 0.02,
            contention_gamma: 0.7,
            cache_capacity: 4 * GIB,
            cache_max_request: 32 * MIB,
            cache_ingest_peak: 340.0 * MIB as f64,
            ingest_alpha: 0.004,
            cache_drain: 260.0 * MIB as f64,
            request_overhead: 0.002,
        },
        noise: NoiseParams {
            micro: production_micro(),
            jobs: JobNoiseParams {
                enabled: true,
                mean_interarrival: 260.0,
                mean_duration: 300.0,
                depth_shape: 1.4,
                min_depth: 1.4,
                max_depth: 8.0,
                stripe_choices: vec![8, 16, 32, 64, 128],
            },
        },
        mds: MdsParams {
            open_base: 0.0003,
            open_per_queued: 0.0001,
            close_base: 0.0001,
        },
        msg_latency: 3.5e-6,
        msg_bandwidth: 0.8e9,
        cores_per_node: 4,
    }
}

/// Tiny, quiet machine for fast unit tests.
pub fn testbed() -> MachineConfig {
    MachineConfig {
        name: "Testbed".to_string(),
        ost_count: 8,
        max_stripe_count: 4,
        default_stripe_count: 2,
        stripe_size: MIB,
        ost: OstParams {
            disk_peak: 100.0 * MIB as f64,
            stream_cap: 80.0 * MIB as f64,
            contention_alpha: 0.01,
            contention_gamma: 1.2,
            cache_capacity: 64 * MIB,
            cache_max_request: 32 * MIB,
            cache_ingest_peak: 300.0 * MIB as f64,
            ingest_alpha: 0.02,
            cache_drain: 90.0 * MIB as f64,
            request_overhead: 0.001,
        },
        noise: NoiseParams::quiet(),
        mds: MdsParams {
            open_base: 0.002,
            open_per_queued: 0.001,
            close_base: 0.0005,
        },
        msg_latency: 5.0e-6,
        msg_bandwidth: 2.0e9,
        cores_per_node: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_eff_declines_with_streams() {
        let p = lustre_ost();
        let e1 = p.disk_eff(1);
        let e4 = p.disk_eff(4);
        let e16 = p.disk_eff(16);
        let e32 = p.disk_eff(32);
        assert!(e1 > e4 && e4 > e16 && e16 > e32);
        // Calibration band: 16 -> 32 streams should lose roughly 16-35 %
        // (paper §II-1: 16-28 % degradation 8192 -> 16384 writers).
        let loss = 1.0 - e32 / e16;
        assert!((0.10..0.40).contains(&loss), "loss {loss}");
    }

    #[test]
    fn disk_eff_zero_streams_is_peak() {
        let p = lustre_ost();
        assert_eq!(p.disk_eff(0), p.disk_peak);
        assert_eq!(p.disk_eff(1), p.disk_peak);
    }

    #[test]
    fn ingest_eff_mildly_declines() {
        let p = lustre_ost();
        assert!(p.ingest_eff(32) > 0.5 * p.ingest_eff(1));
    }

    #[test]
    fn cache_eligibility_matches_fig1_series() {
        let p = lustre_ost();
        assert!(MIB <= p.cache_max_request, "1 MB series is cache-helped");
        assert!(8 * MIB <= p.cache_max_request, "8 MB series is cache-helped");
        assert!(
            64 * MIB > p.cache_max_request,
            "64 MB+ series are disk-bound"
        );
    }

    #[test]
    fn xtp_contention_is_gentle() {
        let x = xtp().ost;
        let loss = 1.0 - x.disk_eff(2) / x.disk_eff(1);
        assert!(loss < 0.05, "XTP §II-1: <5 % degradation, got {loss}");
    }

    #[test]
    fn presets_have_paper_shapes() {
        assert_eq!(jaguar().ost_count, 672);
        assert_eq!(jaguar().max_stripe_count, 160);
        assert_eq!(franklin().ost_count, 96);
        assert_eq!(xtp().ost_count, 40);
        assert!(jaguar().noise.jobs.enabled);
        assert!(!xtp().noise.jobs.enabled, "XTP is not production-shared");
        assert!(!testbed().noise.micro.enabled);
    }

    #[test]
    fn jaguar_full_matches_jaguar_scale() {
        let full = jaguar_full();
        assert_eq!(full.ost_count, 672);
        assert_eq!(full.max_stripe_count, 160);
        assert_ne!(full.name, jaguar().name, "distinct campaign-facing name");
        // Everything except the name delegates to `jaguar()`.
        let mut renamed = jaguar();
        renamed.name = full.name.clone();
        assert!(renamed.to_json().semantically_eq(&full.to_json()));
    }

    #[test]
    fn theoretical_peak_scales_with_osts() {
        let j = jaguar();
        let per_ost = j.ost.disk_peak;
        let peak = j.theoretical_peak().bytes_per_sec();
        assert!((peak - per_ost * 672.0).abs() < 1.0);
    }

    #[test]
    fn config_json_roundtrip() {
        let j = jaguar();
        let s = j.to_json().to_string();
        let back = MachineConfig::from_json(&Value::parse(&s).unwrap()).unwrap();
        assert_eq!(back.name, j.name);
        assert_eq!(back.ost_count, j.ost_count);
        assert_eq!(back.noise.jobs.stripe_choices, j.noise.jobs.stripe_choices);
        assert_eq!(back.ost.disk_peak, j.ost.disk_peak);
        assert!(back.to_json().semantically_eq(&j.to_json()));
    }

    #[test]
    fn config_from_json_names_missing_fields() {
        let mut v = jaguar().to_json();
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "ost_count");
        }
        let err = MachineConfig::from_json(&v).unwrap_err();
        assert!(err.contains("ost_count"), "error was: {err}");
    }
}
