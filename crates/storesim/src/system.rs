//! The composed storage system: OSTs + metadata server + noise field +
//! competing-job load + file layout, exposed through a co-simulation
//! interface.
//!
//! The owning driver (the cluster simulator) holds global time. It asks
//! [`StorageSystem::next_event_time`] when the storage system next changes
//! state, and calls [`StorageSystem::advance_to`] to move it forward and
//! collect finished operations. Internally the system keeps its own event
//! queue for noise transitions, competing-job arrivals/departures and
//! re-planned completion wake-ups (OST completion times shift whenever
//! load or noise changes; stale wake-ups are cancelled).
//!
//! Operations are submitted with a caller-chosen `tag`; completions carry
//! the tag back so the driver can route them to the right simulated rank.

use simcore::{EventQueue, EventToken, FxHashMap, Rng, SimDuration, SimTime, SplitMix64};

use crate::fault::{CorruptionOracle, FailMode, FaultEvent, FaultScript};
use crate::jobs::{combined_factor, CompetingLoad, JobLoadModel};
use crate::layout::{FileId, FileSystem, OstId, StripeSpec};
use crate::mds::{Mds, MetaOp};
use crate::noise::NoiseProcess;
use crate::ost::{OpKind, Ost, RequestId};
use crate::params::MachineConfig;

/// A finished storage operation, surfaced to the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageCompletion {
    /// Caller-provided correlation tag.
    pub tag: u64,
    /// Total bytes moved (zero for metadata ops).
    pub bytes: u64,
    /// Submission time of the whole operation.
    pub submitted: SimTime,
    /// Completion time (of the last constituent chunk).
    pub finished: SimTime,
    /// What finished.
    pub kind: CompletionKind,
    /// True when at least one constituent chunk was aborted by an
    /// error-mode target failure: the operation did *not* take effect.
    pub error: bool,
}

/// Discriminates data from metadata completions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompletionKind {
    /// A write (file- or OST-level).
    Write,
    /// A read.
    Read,
    /// An open/create.
    Open,
    /// A close.
    Close,
}

#[derive(Clone, Copy, Debug)]
enum Internal {
    OstWake(usize),
    MdsWake,
    MicroFlip(usize),
    JobArrival,
    JobDeparture(u64),
    RenewStream(u64),
    /// A scheduled fault (index into `fault_events`) begins.
    FaultStart(usize),
    /// A brownout on OST `.0` ends; divide its factor `.1` back out.
    BrownoutEnd(usize, f64),
    /// OST `.0` recovers, if its fault generation still matches `.1`.
    OstRecover(usize, u64),
    /// The MDS recovers, if its outage generation still matches.
    MdsRecover(u64),
    /// Prompt error completion of a request submitted to a failed target.
    FailFast(u64),
}

/// Current fault status of one OST.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OstHealth {
    Healthy,
    /// Stall-mode failure: frozen, holds requests, data survives.
    Stalled,
    /// Error-mode failure: requests error out, stored data is lost.
    Failed,
}

#[derive(Clone, Copy, Debug)]
struct OpState {
    tag: u64,
    pending: usize,
    total_bytes: u64,
    submitted: SimTime,
    kind: CompletionKind,
    error: bool,
    /// Set when a constituent data-write chunk completed inside an active
    /// silent-corruption window and lost the coin flip; recorded in the
    /// corruption log (keyed by the op's completion time) unless the op
    /// later aborts.
    corrupt_ost: Option<OstId>,
}

#[derive(Clone, Copy, Debug)]
struct BgSpec {
    ost: OstId,
    bytes: u64,
    /// Mean idle gap between bursts, seconds (`None` = continuous).
    mean_gap: Option<f64>,
}

/// The storage half of the co-simulation.
pub struct StorageSystem {
    /// Machine parameters, shared: campaign sweeps hand every replicate
    /// the same `Arc` instead of deep-cloning the config per run.
    cfg: std::sync::Arc<MachineConfig>,
    osts: Vec<Ost>,
    fs: FileSystem,
    mds: Mds,
    micro: Vec<NoiseProcess>,
    micro_factor: Vec<f64>,
    jobs_model: JobLoadModel,
    /// Active competing jobs, sorted by id (ids are handed out
    /// monotonically, so pushes keep the order). A sorted vector instead
    /// of a hash map: [`StorageSystem::combined`] folds an f64 product
    /// over this collection, and hash-map iteration order depends on the
    /// map's capacity history — a reset-and-reused map could disagree
    /// with a fresh one in the last ulp. Id order is history-independent.
    active_jobs: Vec<(u64, CompetingLoad)>,
    next_job_id: u64,
    queue: EventQueue<Internal>,
    /// Per-OST planned wake-up: token plus the instant it fires at, so an
    /// unchanged re-plan can be elided instead of cancelled + rescheduled.
    ost_token: Vec<Option<(EventToken, SimTime)>>,
    mds_token: Option<(EventToken, SimTime)>,
    ops: FxHashMap<u64, OpState>,
    req_to_op: FxHashMap<u64, u64>,
    /// Background streams currently in flight: request id -> spec.
    background: FxHashMap<u64, BgSpec>,
    /// Background streams waiting out a burst gap: token -> spec.
    pending_renew: FxHashMap<u64, BgSpec>,
    /// Injected permanent degradation factor per OST (1.0 = healthy).
    degraded: Vec<f64>,
    /// Composed transient brownout factor per OST (1.0 = none active).
    brownout: Vec<f64>,
    /// Fault status per OST.
    health: Vec<OstHealth>,
    /// Bumped on every OST fault transition so stale recovery events are
    /// ignored when scripts overlap faults on one target.
    health_gen: Vec<u64>,
    /// Start times of error-mode failures per OST: data completed at or
    /// before such an instant was destroyed.
    error_fail_times: Vec<Vec<SimTime>>,
    /// Bumped per MDS outage, for the same stale-recovery reason.
    mds_gen: u64,
    /// Installed fault events (referenced by queue index).
    fault_events: Vec<FaultEvent>,
    next_req: u64,
    next_op: u64,
    rng: Rng,
    /// Isolated RNG stream for silent-corruption draws: taken from the
    /// same seeder as `rng` but advanced independently, so corruption
    /// decisions never perturb the main stochastic timeline (noise, jobs,
    /// background gaps stay byte-identical with or without corruption).
    corrupt_rng: Rng,
    /// Active silent-corruption windows: (ost index, start, end, rate).
    corrupt_windows: Vec<(usize, SimTime, Option<SimTime>, f64)>,
    /// Silently corrupted data writes: (target, op completion time).
    corrupt_log: Vec<(OstId, SimTime)>,
    /// Torn-write abort instants: (target, tear time).
    torn_log: Vec<(OstId, SimTime)>,
    /// Reusable harvest buffer for OST wakes: the hot loop hands the same
    /// allocation to `Ost::advance_into` on every event.
    ost_scratch: Vec<crate::ost::OstCompletion>,
    /// Reusable harvest buffer for MDS wakes.
    mds_scratch: Vec<crate::mds::MdsCompletion>,
    /// Reusable buffer for the OST indices a competing job covers
    /// (arrival/departure noise re-application).
    covered_scratch: Vec<usize>,
    /// Reusable per-stripe-slot scratch for file range mapping.
    stripe_counts: Vec<u64>,
    /// Reusable chunk list for file range mapping.
    chunk_scratch: Vec<(OstId, u64)>,
    out: Vec<StorageCompletion>,
}

impl StorageSystem {
    /// Build a storage system for `cfg`, seeding all stochastic elements
    /// from `seed`. Accepts an owned config or a shared
    /// `Arc<MachineConfig>`; replicates of a sweep pass clones of one
    /// `Arc` so the config is built (and dropped) once.
    pub fn new(cfg: impl Into<std::sync::Arc<MachineConfig>>, seed: u64) -> Self {
        let cfg = cfg.into();
        let mut seeder = SplitMix64::new(seed);
        let mut rng = seeder.stream();
        let corrupt_rng = seeder.stream();
        let mut queue = EventQueue::new();
        let mut osts = Vec::with_capacity(cfg.ost_count);
        let mut micro = Vec::with_capacity(cfg.ost_count);
        let mut micro_factor = Vec::with_capacity(cfg.ost_count);
        for i in 0..cfg.ost_count {
            let ost = Ost::new(cfg.ost.clone());
            let (proc_, first) = NoiseProcess::new(&cfg.noise.micro, &mut rng);
            micro_factor.push(proc_.factor());
            if let Some(delay) = first {
                queue.schedule(SimTime::ZERO + delay, Internal::MicroFlip(i));
            }
            osts.push(ost);
            micro.push(proc_);
        }
        let jobs_model = JobLoadModel::new(cfg.noise.jobs.clone(), cfg.ost_count);
        let fs = FileSystem::new(
            cfg.ost_count,
            cfg.max_stripe_count,
            cfg.default_stripe_count,
            cfg.stripe_size,
        );
        let mds = Mds::new(cfg.mds.clone());
        let ost_token = vec![None; cfg.ost_count];
        let degraded = vec![1.0; cfg.ost_count];
        let brownout = vec![1.0; cfg.ost_count];
        let health = vec![OstHealth::Healthy; cfg.ost_count];
        let health_gen = vec![0; cfg.ost_count];
        let error_fail_times = vec![Vec::new(); cfg.ost_count];
        let mut sys = StorageSystem {
            cfg,
            osts,
            fs,
            mds,
            micro,
            micro_factor,
            jobs_model,
            active_jobs: Vec::new(),
            next_job_id: 0,
            queue,
            ost_token,
            mds_token: None,
            ops: FxHashMap::default(),
            req_to_op: FxHashMap::default(),
            background: FxHashMap::default(),
            pending_renew: FxHashMap::default(),
            degraded,
            brownout,
            health,
            health_gen,
            error_fail_times,
            mds_gen: 0,
            fault_events: Vec::new(),
            next_req: 0,
            next_op: 0,
            rng,
            corrupt_rng,
            corrupt_windows: Vec::new(),
            corrupt_log: Vec::new(),
            torn_log: Vec::new(),
            ost_scratch: Vec::new(),
            mds_scratch: Vec::new(),
            covered_scratch: Vec::new(),
            stripe_counts: Vec::new(),
            chunk_scratch: Vec::new(),
            out: Vec::new(),
        };
        sys.init_jobs();
        // Apply initial noise to every OST.
        for i in 0..sys.osts.len() {
            let f = sys.combined(i);
            sys.osts[i].set_noise(SimTime::ZERO, f);
        }
        sys
    }

    /// Re-seed the system for a fresh run without reallocating: every
    /// stochastic element is rebuilt in the exact construction order of
    /// [`StorageSystem::new`] (so a reset system is byte-identical to a
    /// fresh one for the same seed), while queues, heaps, maps and scratch
    /// buffers keep their capacity. The file *table* survives with sizes
    /// zeroed — sweep runs replay an identical per-seed workload, so
    /// existing `FileId`s stay valid and the per-seed create path can be
    /// skipped. Fault scripts are cleared; re-install per run if needed.
    pub fn reset(&mut self, seed: u64) {
        let mut seeder = SplitMix64::new(seed);
        self.rng = seeder.stream();
        self.corrupt_rng = seeder.stream();
        self.queue.reset();
        for i in 0..self.cfg.ost_count {
            self.osts[i].reset();
            let (proc_, first) = NoiseProcess::new(&self.cfg.noise.micro, &mut self.rng);
            self.micro_factor[i] = proc_.factor();
            if let Some(delay) = first {
                self.queue.schedule(SimTime::ZERO + delay, Internal::MicroFlip(i));
            }
            self.micro[i] = proc_;
        }
        // `jobs_model` is seed-independent (all randomness flows through
        // `rng` at spawn time), so it is retained as-is.
        self.fs.reset_sizes();
        self.mds.reset();
        self.active_jobs.clear();
        self.next_job_id = 0;
        self.ost_token.iter_mut().for_each(|t| *t = None);
        self.mds_token = None;
        self.ops.clear();
        self.req_to_op.clear();
        self.background.clear();
        self.pending_renew.clear();
        self.degraded.fill(1.0);
        self.brownout.fill(1.0);
        self.health.fill(OstHealth::Healthy);
        self.health_gen.fill(0);
        self.error_fail_times.iter_mut().for_each(|v| v.clear());
        self.mds_gen = 0;
        self.fault_events.clear();
        self.next_req = 0;
        self.next_op = 0;
        self.corrupt_windows.clear();
        self.corrupt_log.clear();
        self.torn_log.clear();
        self.ost_scratch.clear();
        self.mds_scratch.clear();
        self.out.clear();
        self.init_jobs();
        for i in 0..self.osts.len() {
            let f = self.combined(i);
            self.osts[i].set_noise(SimTime::ZERO, f);
        }
    }

    /// Seed the stationary competing-job population (memoryless residual
    /// durations) and the arrival stream.
    fn init_jobs(&mut self) {
        if !self.jobs_model.enabled() {
            return;
        }
        // Poisson(expected_active) initial jobs, Knuth's method.
        let lambda = self.jobs_model.expected_active();
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.rng.f64();
            if p <= l {
                break;
            }
            k += 1;
            if k > 64 {
                break; // guard against pathological parameters
            }
        }
        for _ in 0..k {
            let (job, dur) = self.jobs_model.spawn(&mut self.rng);
            let id = self.next_job_id;
            self.next_job_id += 1;
            self.active_jobs.push((id, job));
            self.queue
                .schedule(SimTime::ZERO + dur, Internal::JobDeparture(id));
        }
        let first = self.jobs_model.next_arrival(&mut self.rng);
        self.queue.schedule(SimTime::ZERO + first, Internal::JobArrival);
    }

    /// Current combined slowdown factor of one OST.
    fn combined(&self, i: usize) -> f64 {
        let micro = self.micro_factor[i] * self.degraded[i] * self.brownout[i];
        combined_factor(
            self.active_jobs
                .iter()
                .filter(|(_, j)| j.covers(i, self.cfg.ost_count))
                .map(|(_, j)| j.factor),
            micro,
        )
    }

    fn apply_noise(&mut self, i: usize, now: SimTime) {
        let f = self.combined(i);
        self.osts[i].set_noise(now, f);
        self.replan_ost(i, now);
    }

    /// Like [`Self::apply_noise`], but first force-invalidates the
    /// remembered wake for the OST. Internal (time-ordered) noise events
    /// may rely on replan elision, but *external* state changes —
    /// `degrade_ost` / `restore_ost` calls and fault transitions — must
    /// never leave a stale pending wake behind: a wake scheduled before
    /// `now` would otherwise later drive `Ost::advance` backwards in time.
    fn apply_noise_forced(&mut self, i: usize, now: SimTime) {
        if let Some((tok, _)) = self.ost_token[i].take() {
            self.queue.cancel(tok);
        }
        self.apply_noise(i, now);
    }

    /// The machine configuration this system was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The shared configuration handle (for identity checks when deciding
    /// whether a pooled system can be reset instead of rebuilt).
    pub fn config_arc(&self) -> &std::sync::Arc<MachineConfig> {
        &self.cfg
    }

    /// Mutable access to the layout layer (file creation).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Read access to the layout layer.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Current external-noise factor of one OST (diagnostics).
    pub fn ost_noise(&self, ost: OstId) -> f64 {
        self.osts[ost.0].noise_factor()
    }

    /// In-flight stream count on one OST (diagnostics).
    pub fn ost_streams(&self, ost: OstId) -> usize {
        self.osts[ost.0].active_streams()
    }

    /// Number of competing jobs currently active (diagnostics).
    pub fn active_job_count(&self) -> usize {
        self.active_jobs.len()
    }

    fn fresh_req(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Re-plan elision: when a load or noise change leaves the predicted
    /// wake-up instant where it already is, keep the scheduled event
    /// instead of cancel + reschedule. Replan storms (every submit,
    /// completion and noise flip on a shared OST re-plans it) make this
    /// the single hottest queue interaction; most re-plans are no-ops.
    /// Disabled under `baseline-engine` so before/after benchmarks
    /// measure the pre-optimization behaviour faithfully.
    const REPLAN_ELISION: bool = !cfg!(feature = "baseline-engine");

    fn replan_ost(&mut self, i: usize, now: SimTime) {
        let next = self.osts[i].next_completion().map(|t| t.max(now));
        match (next, self.ost_token[i]) {
            (Some(t), Some((tok, planned))) => {
                if Self::REPLAN_ELISION && planned == t {
                    return;
                }
                self.queue.cancel(tok);
                self.ost_token[i] = Some((self.queue.schedule(t, Internal::OstWake(i)), t));
            }
            (Some(t), None) => {
                self.ost_token[i] = Some((self.queue.schedule(t, Internal::OstWake(i)), t));
            }
            (None, Some((tok, _))) => {
                self.queue.cancel(tok);
                self.ost_token[i] = None;
            }
            (None, None) => {}
        }
    }

    fn replan_mds(&mut self, now: SimTime) {
        let next = self.mds.next_completion().map(|t| t.max(now));
        match (next, self.mds_token) {
            (Some(t), Some((tok, planned))) => {
                if Self::REPLAN_ELISION && planned == t {
                    return;
                }
                self.queue.cancel(tok);
                self.mds_token = Some((self.queue.schedule(t, Internal::MdsWake), t));
            }
            (Some(t), None) => {
                self.mds_token = Some((self.queue.schedule(t, Internal::MdsWake), t));
            }
            (None, Some((tok, _))) => {
                self.queue.cancel(tok);
                self.mds_token = None;
            }
            (None, None) => {}
        }
    }

    /// Submit a write covering `[offset, offset+len)` of `file`.
    /// Completion fires when every constituent OST chunk finishes.
    ///
    /// Contract (all submit methods): `now` must be non-decreasing across
    /// calls touching the same target — the co-simulation driver
    /// dispatches in global time order, which guarantees it.
    pub fn submit_file_write(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        tag: u64,
    ) {
        self.submit_file_op(now, file, offset, len, tag, OpKind::Write, CompletionKind::Write);
    }

    /// Submit a read of `[offset, offset+len)` of `file`.
    pub fn submit_file_read(&mut self, now: SimTime, file: FileId, offset: u64, len: u64, tag: u64) {
        self.submit_file_op(now, file, offset, len, tag, OpKind::Read, CompletionKind::Read);
    }

    /// Shared file-op body: maps the range through the layout layer into
    /// the reusable chunk buffers (the per-write hot path of a sweep
    /// allocates nothing).
    #[allow(clippy::too_many_arguments)]
    fn submit_file_op(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        tag: u64,
        kind: OpKind,
        ck: CompletionKind,
    ) {
        let mut counts = std::mem::take(&mut self.stripe_counts);
        let mut chunks = std::mem::take(&mut self.chunk_scratch);
        self.fs.map_range_into(file, offset, len, &mut counts, &mut chunks);
        self.submit_chunks(now, &chunks, len, tag, kind, ck);
        self.stripe_counts = counts;
        self.chunk_scratch = chunks;
    }

    /// Submit a write of `bytes` directly to one OST (bypassing the layout
    /// layer — used by models that manage placement themselves).
    pub fn submit_ost_write(&mut self, now: SimTime, ost: OstId, bytes: u64, tag: u64) {
        let chunks = [(ost, bytes)];
        self.submit_chunks(now, &chunks, bytes, tag, OpKind::Write, CompletionKind::Write);
    }

    fn submit_chunks(
        &mut self,
        now: SimTime,
        chunks: &[(OstId, u64)],
        total: u64,
        tag: u64,
        kind: OpKind,
        ck: CompletionKind,
    ) {
        assert!(!chunks.is_empty(), "write with no chunks");
        self.process_due(now);
        let op_id = self.next_op;
        self.next_op += 1;
        self.ops.insert(
            op_id,
            OpState {
                tag,
                pending: chunks.len(),
                total_bytes: total,
                submitted: now,
                kind: ck,
                error: false,
                corrupt_ost: None,
            },
        );
        for &(ost, bytes) in chunks {
            let rid = self.fresh_req();
            self.req_to_op.insert(rid.0, op_id);
            if self.health[ost.0] == OstHealth::Failed {
                // Error-mode target: the request bounces promptly instead
                // of reaching the server (one RPC round of latency).
                let at = now + SimDuration::from_secs_f64(self.cfg.ost.request_overhead);
                self.queue.schedule(at, Internal::FailFast(rid.0));
            } else {
                self.osts[ost.0].submit(now, rid, bytes, kind);
                self.replan_ost(ost.0, now);
            }
        }
    }

    /// Submit an open/create to the metadata server.
    pub fn submit_open(&mut self, now: SimTime, tag: u64) {
        self.submit_meta(now, tag, MetaOp::Open, CompletionKind::Open);
    }

    /// Submit a close to the metadata server.
    pub fn submit_close(&mut self, now: SimTime, tag: u64) {
        self.submit_meta(now, tag, MetaOp::Close, CompletionKind::Close);
    }

    fn submit_meta(&mut self, now: SimTime, tag: u64, op: MetaOp, ck: CompletionKind) {
        self.process_due(now);
        let op_id = self.next_op;
        self.next_op += 1;
        self.ops.insert(
            op_id,
            OpState {
                tag,
                pending: 1,
                total_bytes: 0,
                submitted: now,
                kind: ck,
                error: false,
                corrupt_ost: None,
            },
        );
        let rid = self.fresh_req();
        self.req_to_op.insert(rid.0, op_id);
        self.mds.submit(now, rid, op);
        self.replan_mds(now);
    }

    /// Degrade one OST to a fixed fraction of its capability from `now`
    /// on (failure injection: a dying disk, a rebuilding RAID set). The
    /// factor multiplies into the noise combination and persists until
    /// [`StorageSystem::restore_ost`].
    pub fn degrade_ost(&mut self, now: SimTime, ost: OstId, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0);
        self.process_due(now);
        self.degraded[ost.0] = factor;
        self.apply_noise_forced(ost.0, now);
    }

    /// Lift a previous [`StorageSystem::degrade_ost`].
    pub fn restore_ost(&mut self, now: SimTime, ost: OstId) {
        self.process_due(now);
        self.degraded[ost.0] = 1.0;
        self.apply_noise_forced(ost.0, now);
    }

    /// Install a fault script: every event is scheduled through the
    /// internal DES, so faulted runs stay byte-identical per seed. Call
    /// before driving the system (events must not be in the past).
    pub fn install_faults(&mut self, script: &FaultScript) {
        for ev in &script.events {
            let idx = self.fault_events.len();
            self.fault_events.push(*ev);
            self.queue.schedule(ev.at(), Internal::FaultStart(idx));
        }
    }

    /// Whether `ost` is currently down (either failure mode).
    pub fn ost_failed(&self, ost: OstId) -> bool {
        self.health[ost.0] != OstHealth::Healthy
    }

    /// Whether data that finished landing on `ost` at time `t` was later
    /// (or at `t`) destroyed by an error-mode failure. Stall-mode outages
    /// never destroy data.
    pub fn ost_lost_data_since(&self, ost: OstId, t: SimTime) -> bool {
        self.error_fail_times[ost.0].iter().any(|&s| s >= t)
    }

    /// Snapshot the ground truth about quiet damage: silently corrupted
    /// writes, torn-write instants, and currently dead targets. The
    /// integrity mirror of [`StorageSystem::ost_lost_data_since`].
    pub fn integrity_oracle(&self) -> CorruptionOracle {
        CorruptionOracle {
            corrupt: self.corrupt_log.clone(),
            torn: self.torn_log.clone(),
            dead: (0..self.health.len())
                .filter(|&i| self.health[i] == OstHealth::Failed)
                .map(OstId)
                .collect(),
            lost: self
                .error_fail_times
                .iter()
                .enumerate()
                .flat_map(|(i, ts)| ts.iter().map(move |&t| (OstId(i), t)))
                .collect(),
        }
    }

    /// Install a perpetual background stream on `ost`: a `bytes`-sized
    /// direct write that immediately resubmits itself on completion. This
    /// is the paper's artificial external interference (§IV: three 1 GiB
    /// writers per target on 8 targets).
    pub fn add_background_stream(&mut self, now: SimTime, ost: OstId, bytes: u64) {
        self.process_due(now);
        self.start_background(now, BgSpec {
            ost,
            bytes,
            mean_gap: None,
        });
    }

    /// Install a bursty background stream: after each completed burst the
    /// stream idles for an exponential gap (mean `mean_gap_secs`) before
    /// writing again — a competing application's duty-cycled IO phases.
    pub fn add_bursty_stream(&mut self, now: SimTime, ost: OstId, bytes: u64, mean_gap_secs: f64) {
        self.process_due(now);
        self.start_background(now, BgSpec {
            ost,
            bytes,
            mean_gap: Some(mean_gap_secs),
        });
    }

    fn start_background(&mut self, now: SimTime, spec: BgSpec) {
        if self.health[spec.ost.0] == OstHealth::Failed {
            // The interference stream's target is gone; the stream dies
            // with it (competing jobs see the failure too).
            return;
        }
        let rid = self.fresh_req();
        self.background.insert(rid.0, spec);
        self.osts[spec.ost.0].submit(now, rid, spec.bytes, OpKind::WriteDirect);
        self.replan_ost(spec.ost.0, now);
    }

    /// When the storage system next changes state on its own.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advance internal state to `deadline` (inclusive), returning every
    /// operation completion with `finished <= deadline`, in completion
    /// order.
    pub fn advance_to(&mut self, deadline: SimTime) -> Vec<StorageCompletion> {
        self.process_due(deadline);
        std::mem::take(&mut self.out)
    }

    /// Buffer-reusing form of [`StorageSystem::advance_to`]: appends the
    /// completions to `out` so a driver loop can hand the same allocation
    /// back on every wake.
    pub fn advance_into(&mut self, deadline: SimTime, out: &mut Vec<StorageCompletion>) {
        self.process_due(deadline);
        out.append(&mut self.out);
    }

    /// Process every internal event with `time <= deadline`. Called from
    /// [`Self::advance_to`] and from every external entry point
    /// (submissions, degrade/restore), so state mutations at `now` can
    /// never observe an OST that still owes progress to an earlier queued
    /// wake — that would drive `Ost::settle` backwards in time.
    fn process_due(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            match ev {
                Internal::OstWake(i) => {
                    self.ost_token[i] = None;
                    // Harvest into the reusable scratch buffer (taken out of
                    // `self` so `finish_request` can borrow freely).
                    let mut done = std::mem::take(&mut self.ost_scratch);
                    self.osts[i].advance_into(t, &mut done);
                    for c in done.drain(..) {
                        self.finish_request(t, c.id, Some(i));
                    }
                    self.ost_scratch = done;
                    self.replan_ost(i, t);
                }
                Internal::MdsWake => {
                    self.mds_token = None;
                    let mut done = std::mem::take(&mut self.mds_scratch);
                    self.mds.advance_into(t, &mut done);
                    for c in done.drain(..) {
                        self.finish_request(t, c.id, None);
                    }
                    self.mds_scratch = done;
                    self.replan_mds(t);
                }
                Internal::MicroFlip(i) => {
                    let (factor, delay) = self.micro[i].transition(&mut self.rng);
                    self.micro_factor[i] = factor;
                    self.queue.schedule(t + delay, Internal::MicroFlip(i));
                    self.apply_noise(i, t);
                }
                Internal::JobArrival => {
                    let (job, dur) = self.jobs_model.spawn(&mut self.rng);
                    let id = self.next_job_id;
                    self.next_job_id += 1;
                    let mut covered = std::mem::take(&mut self.covered_scratch);
                    covered.clear();
                    covered.extend(job.osts(self.cfg.ost_count));
                    self.active_jobs.push((id, job));
                    self.queue.schedule(t + dur, Internal::JobDeparture(id));
                    let next = self.jobs_model.next_arrival(&mut self.rng);
                    self.queue.schedule(t + next, Internal::JobArrival);
                    for &i in &covered {
                        self.apply_noise(i, t);
                    }
                    self.covered_scratch = covered;
                }
                Internal::JobDeparture(id) => {
                    if let Ok(pos) = self.active_jobs.binary_search_by_key(&id, |&(i, _)| i) {
                        let (_, job) = self.active_jobs.remove(pos);
                        let mut covered = std::mem::take(&mut self.covered_scratch);
                        covered.clear();
                        covered.extend(job.osts(self.cfg.ost_count));
                        for &i in &covered {
                            self.apply_noise(i, t);
                        }
                        self.covered_scratch = covered;
                    }
                }
                Internal::RenewStream(token) => {
                    if let Some(spec) = self.pending_renew.remove(&token) {
                        self.start_background(t, spec);
                    }
                }
                Internal::FaultStart(idx) => {
                    let ev = self.fault_events[idx];
                    self.start_fault(t, ev);
                }
                Internal::BrownoutEnd(i, factor) => {
                    self.brownout[i] = (self.brownout[i] / factor).min(1.0);
                    self.apply_noise_forced(i, t);
                }
                Internal::OstRecover(i, gen) => {
                    if self.health_gen[i] == gen && self.health[i] != OstHealth::Healthy {
                        if self.osts[i].is_frozen() {
                            self.osts[i].unfreeze(t);
                        }
                        self.health[i] = OstHealth::Healthy;
                        self.apply_noise_forced(i, t);
                    }
                }
                Internal::MdsRecover(gen) => {
                    if gen == self.mds_gen && self.mds.is_frozen() {
                        self.mds.unfreeze(t);
                        self.replan_mds(t);
                    }
                }
                Internal::FailFast(rid) => {
                    self.complete_part(t, RequestId(rid), true);
                }
            }
        }
    }

    /// Apply one fault event at its scheduled instant.
    fn start_fault(&mut self, t: SimTime, ev: FaultEvent) {
        match ev {
            FaultEvent::Brownout {
                ost,
                factor,
                duration,
                ..
            } => {
                let i = ost.0;
                self.brownout[i] = (self.brownout[i] * factor).max(1e-9);
                self.apply_noise_forced(i, t);
                if let Some(d) = duration {
                    self.queue.schedule(t + d, Internal::BrownoutEnd(i, factor));
                }
            }
            FaultEvent::OstFail {
                ost,
                mode,
                recover_at,
                ..
            } => {
                let i = ost.0;
                self.health_gen[i] += 1;
                if self.osts[i].is_frozen() {
                    // A new fault supersedes a previous stall.
                    self.osts[i].unfreeze(t);
                }
                match mode {
                    FailMode::Stall => {
                        self.health[i] = OstHealth::Stalled;
                        self.osts[i].freeze(t);
                    }
                    FailMode::Error => {
                        self.health[i] = OstHealth::Failed;
                        self.error_fail_times[i].push(t);
                        for rid in self.osts[i].fail_all(t) {
                            if self.background.remove(&rid.0).is_some() {
                                continue; // interference stream dies with the target
                            }
                            self.complete_part(t, rid, true);
                        }
                    }
                }
                if let Some(r) = recover_at {
                    let gen = self.health_gen[i];
                    self.queue
                        .schedule(if r > t { r } else { t }, Internal::OstRecover(i, gen));
                }
                self.apply_noise_forced(i, t);
            }
            FaultEvent::MdsOutage { duration, .. } => {
                self.mds_gen += 1;
                self.mds.freeze(t);
                self.replan_mds(t);
                self.queue.schedule(t + duration, Internal::MdsRecover(self.mds_gen));
            }
            FaultEvent::SilentCorruption {
                ost,
                duration,
                rate,
                ..
            } => {
                // Deliberately schedules nothing and touches no OST state:
                // a silent-corruption window must leave the event timeline
                // byte-identical to a clean run.
                let end = duration.map(|d| t + d);
                self.corrupt_windows.push((ost.0, t, end, rate));
            }
            FaultEvent::TornWrite { ost, .. } => {
                let i = ost.0;
                let mut torn_any = false;
                for rid in self.osts[i].fail_all(t) {
                    if let Some(spec) = self.background.remove(&rid.0) {
                        // The target stays healthy, so the interference
                        // stream restarts immediately (its burst begins
                        // over — only its own prefix was torn).
                        self.start_background(t, spec);
                        continue;
                    }
                    torn_any = true;
                    self.complete_part(t, rid, true);
                }
                if torn_any {
                    self.torn_log.push((ost, t));
                }
                self.replan_ost(i, t);
            }
        }
    }

    fn finish_request(&mut self, now: SimTime, rid: RequestId, ost: Option<usize>) {
        if let Some(spec) = self.background.remove(&rid.0) {
            match spec.mean_gap {
                None => self.start_background(now, spec),
                Some(gap) => {
                    let token = self.next_req;
                    self.next_req += 1;
                    self.pending_renew.insert(token, spec);
                    let delay = SimDuration::from_secs_f64(self.rng.exp(gap));
                    self.queue.schedule(now + delay, Internal::RenewStream(token));
                }
            }
            return;
        }
        if let Some(i) = ost {
            self.maybe_corrupt(now, rid, i);
        }
        self.complete_part(now, rid, false);
    }

    /// Silent-corruption decision for one data-write chunk completing on
    /// OST `i` at `now`. Draws from the isolated corruption stream only
    /// when a window is active, so corruption-free runs (and non-write
    /// completions) consume nothing from it.
    fn maybe_corrupt(&mut self, now: SimTime, rid: RequestId, i: usize) {
        let Some(&op_id) = self.req_to_op.get(&rid.0) else {
            return;
        };
        let Some(op) = self.ops.get(&op_id) else {
            return;
        };
        if op.kind != CompletionKind::Write {
            return;
        }
        let rate = self
            .corrupt_windows
            .iter()
            .filter(|&&(ost, start, end, _)| {
                ost == i && start <= now && end.map(|e| now <= e).unwrap_or(true)
            })
            .map(|&(_, _, _, r)| r)
            .fold(0.0f64, f64::max);
        if rate > 0.0 && self.corrupt_rng.chance(rate) {
            self.ops.get_mut(&op_id).expect("op state exists").corrupt_ost = Some(OstId(i));
        }
    }

    /// Account one finished (or aborted) constituent request against its
    /// operation, surfacing the operation completion when the last part
    /// resolves.
    fn complete_part(&mut self, now: SimTime, rid: RequestId, error: bool) {
        let op_id = self
            .req_to_op
            .remove(&rid.0)
            .expect("completion for unknown request");
        let op = self.ops.get_mut(&op_id).expect("op state exists");
        op.pending -= 1;
        op.error |= error;
        if op.pending == 0 {
            let op = self.ops.remove(&op_id).expect("op state exists");
            if let (Some(ost), false) = (op.corrupt_ost, op.error) {
                // The write took effect but carries a silent bit-flip;
                // key the log by completion time so it correlates with
                // the protocol's write records.
                self.corrupt_log.push((ost, now));
            }
            self.out.push(StorageCompletion {
                tag: op.tag,
                bytes: op.total_bytes,
                submitted: op.submitted,
                finished: now,
                kind: op.kind,
                error: op.error,
            });
        }
    }

    /// Convenience for non-cluster experiments (pure storage tests): run
    /// until all submitted operations complete or `deadline` passes,
    /// returning completions.
    pub fn run_until_quiet(&mut self, deadline: SimTime) -> Vec<StorageCompletion> {
        let mut all = Vec::new();
        self.run_until_quiet_into(deadline, &mut all);
        all
    }

    /// Allocation-free [`StorageSystem::run_until_quiet`]: completions are
    /// appended to a caller-owned (and reusable) buffer. Stops as soon as
    /// no submitted operation remains pending, leaving background noise
    /// events unconsumed — the sweep engine's steady-state drain loop.
    pub fn run_until_quiet_into(&mut self, deadline: SimTime, out: &mut Vec<StorageCompletion>) {
        loop {
            if self.ops.is_empty() {
                break;
            }
            match self.next_event_time() {
                Some(t) if t <= deadline => self.advance_into(t, out),
                _ => break,
            }
        }
    }

    /// Create a file with an explicit stripe size (the ADIOS MPI-IO method
    /// sets the stripe width to the per-rank buffer size so each rank's
    /// region maps to a single OST).
    pub fn create_file_with_stripe_size(
        &mut self,
        name: impl Into<String>,
        spec: StripeSpec,
        stripe_size: u64,
    ) -> FileId {
        let id = self.fs.create(name, spec);
        self.fs.set_stripe_size(id, stripe_size);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{jaguar, testbed};
    use simcore::units::MIB;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn drain(sys: &mut StorageSystem) -> Vec<StorageCompletion> {
        sys.run_until_quiet(t(1e6))
    }

    #[test]
    fn single_write_completes_once() {
        let mut sys = StorageSystem::new(testbed(), 1);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        sys.submit_file_write(SimTime::ZERO, f, 0, 8 * MIB, 77);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 77);
        assert_eq!(done[0].bytes, 8 * MIB);
        assert!(done[0].finished > SimTime::ZERO);
    }

    #[test]
    fn striped_write_waits_for_all_chunks() {
        let mut sys = StorageSystem::new(testbed(), 2);
        let f = sys
            .fs_mut()
            .create("s", StripeSpec::Pinned(vec![OstId(0), OstId(1)]));
        sys.submit_file_write(SimTime::ZERO, f, 0, 4 * MIB, 1);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 1, "one completion for the whole op");
        assert_eq!(done[0].bytes, 4 * MIB);
    }

    #[test]
    fn concurrent_writers_on_one_ost_interfere() {
        // Time for 1 writer alone vs 8 writers sharing one OST
        // (disk-lane sizes): per-writer time grows superlinearly.
        let cfg = testbed();
        let bytes = 128 * MIB; // > testbed cache
        let mut solo = StorageSystem::new(cfg.clone(), 3);
        solo.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let solo_done = drain(&mut solo);
        let solo_time = (solo_done[0].finished - solo_done[0].submitted).as_secs_f64();

        let mut shared = StorageSystem::new(cfg, 3);
        for i in 0..8 {
            shared.submit_ost_write(SimTime::ZERO, OstId(0), bytes, i);
        }
        let done = drain(&mut shared);
        let max_time = done
            .iter()
            .map(|c| (c.finished - c.submitted).as_secs_f64())
            .fold(0.0, f64::max);
        // 8-way sharing with contention penalty: slower than 5x solo even
        // though solo itself is stream-capped below the disk peak.
        assert!(
            max_time > 5.0 * solo_time,
            "internal interference: solo {solo_time}, 8-way {max_time}"
        );
    }

    #[test]
    fn writers_on_distinct_osts_do_not_interfere() {
        let cfg = testbed();
        let bytes = 128 * MIB;
        let mut sys = StorageSystem::new(cfg.clone(), 4);
        for i in 0..4 {
            sys.submit_ost_write(SimTime::ZERO, OstId(i as usize), bytes, i);
        }
        let done = drain(&mut sys);
        let mut solo = StorageSystem::new(cfg, 4);
        solo.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let solo_done = drain(&mut solo);
        let solo_time = (solo_done[0].finished - solo_done[0].submitted).as_secs_f64();
        for c in done {
            let time = (c.finished - c.submitted).as_secs_f64();
            assert!(
                (time - solo_time).abs() < 0.05 * solo_time,
                "parallel targets should behave like solo: {time} vs {solo_time}"
            );
        }
    }

    #[test]
    fn open_and_close_complete() {
        let mut sys = StorageSystem::new(testbed(), 5);
        sys.submit_open(SimTime::ZERO, 10);
        sys.submit_close(t(1.0), 11);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].kind, CompletionKind::Open);
        assert_eq!(done[1].kind, CompletionKind::Close);
    }

    #[test]
    fn background_stream_slows_foreground() {
        let cfg = testbed();
        // Larger than the testbed cache so the foreground write shares the
        // disk lane with the background stream.
        let bytes = 128 * MIB;
        let mut quiet = StorageSystem::new(cfg.clone(), 6);
        quiet.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let qd = drain(&mut quiet);
        let q_time = (qd[0].finished - qd[0].submitted).as_secs_f64();

        let mut busy = StorageSystem::new(cfg, 6);
        busy.add_background_stream(SimTime::ZERO, OstId(0), 512 * MIB);
        busy.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let bd = drain(&mut busy);
        assert_eq!(bd.len(), 1, "background never surfaces completions");
        let b_time = (bd[0].finished - bd[0].submitted).as_secs_f64();
        assert!(
            b_time > 1.5 * q_time,
            "external interference: quiet {q_time}, busy {b_time}"
        );
    }

    #[test]
    fn background_stream_renews_itself() {
        let cfg = testbed();
        let mut sys = StorageSystem::new(cfg, 7);
        sys.add_background_stream(SimTime::ZERO, OstId(0), MIB);
        // Let many renewal cycles pass; the OST must still be busy.
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let next = sys.next_event_time().expect("background keeps events flowing");
            now = next;
            sys.advance_to(next);
        }
        assert!(sys.ost_streams(OstId(0)) >= 1);
        assert!(now > SimTime::ZERO);
    }

    #[test]
    fn bursty_stream_has_idle_gaps() {
        let cfg = testbed();
        let mut sys = StorageSystem::new(cfg, 8);
        // Bursts of 8 MiB with generous gaps.
        sys.add_bursty_stream(SimTime::ZERO, OstId(0), 8 * MIB, 1.0);
        let mut idle_seen = false;
        for _ in 0..40 {
            let Some(next) = sys.next_event_time() else {
                break;
            };
            sys.advance_to(next);
            if sys.ost_streams(OstId(0)) == 0 {
                idle_seen = true;
            }
        }
        assert!(idle_seen, "bursty stream must leave idle windows");
    }

    #[test]
    fn jobs_populate_and_churn_on_production_machines() {
        let mut sys = StorageSystem::new(jaguar(), 11);
        // Stationary initialisation plus churn over ten minutes.
        let mut seen_active = sys.active_job_count();
        let mut max_active = seen_active;
        let end = t(600.0);
        while let Some(next) = sys.next_event_time() {
            if next > end {
                break;
            }
            sys.advance_to(next);
            seen_active = sys.active_job_count();
            max_active = max_active.max(seen_active);
        }
        assert!(max_active >= 1, "competing jobs should appear within 10 min");
    }

    #[test]
    fn job_noise_slows_covered_osts_only() {
        // Construct a system and force a job manually via the arrival path:
        // run until an arrival fires, then check factors.
        let mut sys = StorageSystem::new(jaguar(), 13);
        let end = t(1200.0);
        while let Some(next) = sys.next_event_time() {
            if next > end {
                break;
            }
            sys.advance_to(next);
            if sys.active_job_count() > 0 {
                break;
            }
        }
        if sys.active_job_count() > 0 {
            let slowed = (0..672)
                .filter(|&i| sys.ost_noise(OstId(i)) < 0.99)
                .count();
            assert!(slowed > 0, "a job must slow some OSTs");
            assert!(slowed < 672, "but not the whole machine");
        }
    }

    #[test]
    fn noise_makes_identical_runs_vary_across_seeds() {
        let cfg = jaguar();
        let bytes = 128 * MIB;
        let mut times = Vec::new();
        for seed in 0..8 {
            let mut sys = StorageSystem::new(cfg.clone(), seed);
            sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
            let done = drain(&mut sys);
            times.push((done[0].finished - done[0].submitted).as_secs_f64());
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.02,
            "production noise should vary service times: {times:?}"
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed: u64| {
            let mut sys = StorageSystem::new(jaguar(), seed);
            for i in 0..16 {
                sys.submit_ost_write(SimTime::ZERO, OstId(i % 4), 32 * MIB, i as u64);
            }
            drain(&mut sys)
                .iter()
                .map(|c| (c.tag, c.finished.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn degraded_ost_slows_and_restores() {
        let cfg = testbed();
        let bytes = 128 * MIB;
        let time_of = |degrade: bool| {
            let mut sys = StorageSystem::new(cfg.clone(), 12);
            if degrade {
                sys.degrade_ost(SimTime::ZERO, OstId(0), 0.1);
            }
            sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
            let d = sys.run_until_quiet(t(1e6));
            (d[0].finished - d[0].submitted).as_secs_f64()
        };
        let healthy = time_of(false);
        let degraded = time_of(true);
        assert!(
            degraded > 5.0 * healthy,
            "degradation must bite: {healthy} vs {degraded}"
        );
        // Restore mid-flight speeds recovery.
        let mut sys = StorageSystem::new(cfg, 12);
        sys.degrade_ost(SimTime::ZERO, OstId(0), 0.1);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        sys.restore_ost(t(healthy), OstId(0));
        let d = sys.run_until_quiet(t(1e6));
        let partial = (d[0].finished - d[0].submitted).as_secs_f64();
        assert!(partial < degraded && partial > healthy);
    }

    #[test]
    fn run_until_quiet_respects_deadline() {
        let mut sys = StorageSystem::new(testbed(), 9);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 1024 * MIB, 0);
        let done = sys.run_until_quiet(t(0.001));
        assert!(done.is_empty(), "deadline too early for completion");
    }

    #[test]
    fn silent_corruption_logs_without_touching_the_timeline() {
        let workload = |script: Option<FaultScript>| {
            let mut sys = StorageSystem::new(testbed(), 13);
            if let Some(script) = script {
                sys.install_faults(&script);
            }
            sys.add_background_stream(SimTime::ZERO, OstId(1), 64 * MIB);
            for i in 0..6u64 {
                sys.submit_ost_write(
                    SimTime::ZERO + SimDuration::from_millis(i),
                    OstId((i % 2) as usize),
                    16 * MIB,
                    i,
                );
            }
            let done = sys.run_until_quiet(t(1e6));
            let oracle = sys.integrity_oracle();
            (done, oracle)
        };
        let (clean, clean_oracle) = workload(None);
        let script = FaultScript::none().silent_corruption(0.0, 0, None, 1.0);
        assert!(script.is_silent_only());
        let (dirty, oracle) = workload(Some(script));

        // The whole point of the isolated corruption stream: completions
        // (count, times, error flags) are byte-identical either way.
        assert_eq!(clean, dirty);
        assert!(clean_oracle.is_empty());

        // Rate 1.0 on OST 0 → exactly the three OST-0 writes are flagged,
        // keyed by their completion times; OST 1 is untouched.
        assert_eq!(oracle.corrupt_count(), 3);
        for c in dirty.iter().filter(|c| c.tag % 2 == 0) {
            assert!(oracle.write_corrupted(OstId(0), c.finished));
        }
        assert!(!oracle.corrupt.iter().any(|&(o, _)| o == OstId(1)));
        assert!(oracle.torn.is_empty() && oracle.dead.is_empty());
    }

    #[test]
    fn silent_corruption_window_expires() {
        let mut sys = StorageSystem::new(testbed(), 14);
        sys.install_faults(&FaultScript::none().silent_corruption(0.0, 0, Some(0.0001), 1.0));
        // Submitted after the window closes: completion is far past 0.1 ms.
        sys.submit_ost_write(t(1.0), OstId(0), 16 * MIB, 0);
        let done = sys.run_until_quiet(t(1e6));
        assert_eq!(done.len(), 1);
        assert!(sys.integrity_oracle().is_empty());
    }

    #[test]
    fn torn_write_aborts_foreground_and_restarts_background() {
        let mut sys = StorageSystem::new(testbed(), 15);
        sys.add_background_stream(SimTime::ZERO, OstId(0), 64 * MIB);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 512 * MIB, 7);
        sys.install_faults(&FaultScript::none().torn_write(0.5, 0));
        let done = sys.run_until_quiet(t(1e6));
        assert_eq!(done.len(), 1);
        assert!(done[0].error, "torn write surfaces as an error completion");
        assert!(
            (done[0].finished.as_secs_f64() - 0.5).abs() < 1e-9,
            "aborted at the tear instant"
        );
        let oracle = sys.integrity_oracle();
        assert_eq!(oracle.torn, vec![(OstId(0), t(0.5))]);
        assert!(oracle.dead.is_empty(), "target itself stays healthy");

        // The OST is still alive: a retry write completes cleanly, and the
        // restarted background stream keeps interfering (never surfaces).
        sys.submit_ost_write(t(1.0), OstId(0), 16 * MIB, 8);
        let retry = sys.run_until_quiet(t(1e6));
        assert_eq!(retry.len(), 1);
        assert!(!retry[0].error);
    }

    #[test]
    fn oracle_reports_failed_targets_as_dead() {
        let mut sys = StorageSystem::new(testbed(), 16);
        sys.install_faults(&FaultScript::none().fail_ost(
            0.0,
            2,
            FailMode::Error,
            None,
        ));
        sys.submit_ost_write(t(1.0), OstId(0), MIB, 0);
        let _ = sys.run_until_quiet(t(1e6));
        assert_eq!(sys.integrity_oracle().dead, vec![OstId(2)]);
    }

    #[test]
    fn completions_are_time_ordered() {
        let mut sys = StorageSystem::new(testbed(), 10);
        for i in 0..20u64 {
            sys.submit_ost_write(
                SimTime::ZERO + SimDuration::from_millis(i),
                OstId((i % 8) as usize),
                (i + 1) * MIB,
                i,
            );
        }
        let done = drain(&mut sys);
        assert_eq!(done.len(), 20);
        for w in done.windows(2) {
            assert!(w[0].finished <= w[1].finished);
        }
    }
}
