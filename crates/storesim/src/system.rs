//! The composed storage system: OSTs + metadata server + noise field +
//! competing-job load + file layout, exposed through a co-simulation
//! interface.
//!
//! The owning driver (the cluster simulator) holds global time. It asks
//! [`StorageSystem::next_event_time`] when the storage system next changes
//! state, and calls [`StorageSystem::advance_to`] to move it forward and
//! collect finished operations.
//!
//! Internally the system is **sharded**: the per-OST lanes (target engine,
//! micro-noise process, background interference streams and their wake
//! planning) are partitioned into contiguous shards, each with its own
//! event heap and scratch arenas. Purely lane-local events — OST wakes,
//! micro-noise flips, background-burst renewals — live in the shard heaps
//! and are drained up to a conservative horizon (the next *global* decision
//! point: MDS wakes, job churn, fault-script edits, or the driver's
//! deadline) either serially or in parallel on a [`simcore::ShardPool`].
//! Foreground chunk completions are deferred into per-shard buffers and
//! merged in deterministic `(time, target, submission)` order before any
//! global event runs, so the serialized client protocol observes exactly
//! the same completion stream at any shard/thread count: serial and
//! sharded execution are byte-identical by construction, because both run
//! the same per-shard drain over the same intrinsically-keyed heaps.
//!
//! Operations are submitted with a caller-chosen `tag`; completions carry
//! the tag back so the driver can route them to the right simulated rank.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use simcore::{EventQueue, EventToken, FxHashMap, Rng, ShardPool, SimDuration, SimTime, SplitMix64};

use crate::fault::{CorruptionOracle, FailMode, FaultEvent, FaultScript};
use crate::jobs::{combined_factor, CompetingLoad, JobLoadModel};
use crate::layout::{FileId, FileSystem, OstId, StripeSpec};
use crate::mds::{Mds, MetaOp};
use crate::noise::NoiseProcess;
use crate::ost::{OpKind, Ost, OstCompletion, RequestId, BG_BIT};
use crate::params::MachineConfig;

/// A finished storage operation, surfaced to the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageCompletion {
    /// Caller-provided correlation tag.
    pub tag: u64,
    /// Total bytes moved (zero for metadata ops).
    pub bytes: u64,
    /// Submission time of the whole operation.
    pub submitted: SimTime,
    /// Completion time (of the last constituent chunk).
    pub finished: SimTime,
    /// What finished.
    pub kind: CompletionKind,
    /// True when at least one constituent chunk was aborted by an
    /// error-mode target failure: the operation did *not* take effect.
    pub error: bool,
}

/// Discriminates data from metadata completions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompletionKind {
    /// A write (file- or OST-level).
    Write,
    /// A read.
    Read,
    /// An open/create.
    Open,
    /// A close.
    Close,
}

/// Global (cross-lane) events. Everything lane-local — OST wakes, noise
/// flips, background renewals — lives in the shard heaps instead.
#[derive(Clone, Copy, Debug)]
enum Internal {
    MdsWake,
    JobArrival,
    JobDeparture(u64),
    /// A scheduled fault (index into `fault_events`) begins.
    FaultStart(usize),
    /// A brownout on OST `.0` ends; divide its factor `.1` back out.
    BrownoutEnd(usize, f64),
    /// OST `.0` recovers, if its fault generation still matches `.1`.
    OstRecover(usize, u64),
    /// The MDS recovers, if its outage generation still matches.
    MdsRecover(u64),
    /// Prompt error completion of a request submitted to a failed target.
    FailFast(u64),
}

/// Current fault status of one OST.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OstHealth {
    Healthy,
    /// Stall-mode failure: frozen, holds requests, data survives.
    Stalled,
    /// Error-mode failure: requests error out, stored data is lost.
    Failed,
}

#[derive(Clone, Copy, Debug)]
struct OpState {
    tag: u64,
    pending: usize,
    total_bytes: u64,
    submitted: SimTime,
    kind: CompletionKind,
    error: bool,
    /// Set when a constituent data-write chunk completed inside an active
    /// silent-corruption window and lost the coin flip; recorded in the
    /// corruption log (keyed by the op's completion time) unless the op
    /// later aborts.
    corrupt_ost: Option<OstId>,
}

#[derive(Clone, Copy, Debug)]
struct BgSpec {
    ost: OstId,
    bytes: u64,
    /// Mean idle gap between bursts, seconds (`None` = continuous).
    mean_gap: Option<f64>,
}

/// Shard-event classes, in tie-break order at equal `(time, ost)`.
const CLASS_WAKE: u8 = 0;
const CLASS_FLIP: u8 = 1;
const CLASS_RENEW: u8 = 2;

/// One lane-local event. The key is **intrinsic** — time, target, class,
/// and a validation stamp — so the pop order of a shard heap is a pure
/// function of its contents, independent of insertion history. That is
/// what lets the serial engine and every sharded layout replay the exact
/// same per-lane event order (the old global queue broke ties by
/// insertion sequence, which a sharded drain cannot reproduce).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ShardEv {
    /// Event time in nanoseconds.
    t: u64,
    /// Global OST index.
    ost: u32,
    /// `CLASS_*` tie-break.
    class: u8,
    /// Wake generation (`CLASS_WAKE`) or renewal token (`CLASS_RENEW`).
    aux: u64,
}

type EvHeap = BinaryHeap<Reverse<ShardEv>>;

/// A deferred foreground chunk completion, merged and applied serially
/// between shard windows.
#[derive(Clone, Copy, Debug)]
struct FgDone {
    t: u64,
    ost: u32,
    rid: u64,
}

/// Everything one OST lane owns: target engine, noise, health, wake
/// planning and background streams. Shards get disjoint `&mut [Lane]`
/// ranges, which is the whole safety argument for the parallel drain.
#[derive(Debug)]
struct Lane {
    ost: Ost,
    micro: NoiseProcess,
    micro_factor: f64,
    /// Lane-isolated RNG stream (micro-noise transitions, bursty
    /// background gaps): keeps every stochastic draw a shard can make
    /// independent of cross-lane event interleaving.
    noise_rng: Rng,
    /// Injected permanent degradation factor (1.0 = healthy).
    degraded: f64,
    /// Composed transient brownout factor (1.0 = none active).
    brownout: f64,
    health: OstHealth,
    /// Bumped on every fault transition so stale recovery events are
    /// ignored when scripts overlap faults on one target.
    health_gen: u64,
    /// Start times of error-mode failures: data completed at or before
    /// such an instant was destroyed.
    error_fail_times: Vec<SimTime>,
    /// The currently planned wake instant (nanos), if any. Wake events
    /// are never cancelled; a popped wake is valid only if its time and
    /// generation both still match (lazy invalidation).
    planned_wake: Option<u64>,
    wake_gen: u64,
    /// Background streams in flight on this lane: (request id, spec).
    bg_active: Vec<(u64, BgSpec)>,
    /// Bursty streams waiting out a gap: (renewal token, spec).
    bg_pending: Vec<(u64, BgSpec)>,
    /// Lane-local id counter for background rids and renewal tokens.
    bg_next: u64,
    /// Foreground chunks in flight on this lane. Maintained so the
    /// lookahead bound ([`StorageSystem::fg_bound`]) can skip the (many)
    /// lanes that carry only background interference without scanning
    /// their stream sets.
    fg_count: u32,
}

impl Lane {
    fn alloc_bg_id(&mut self, i: usize) -> u64 {
        let id = BG_BIT | ((i as u64) << 40) | self.bg_next;
        self.bg_next += 1;
        id
    }
}

/// Per-shard event heap and scratch arenas.
#[derive(Debug, Default)]
struct Shard {
    heap: EvHeap,
    /// Reusable harvest buffer for `Ost::advance_into`.
    scratch: Vec<OstCompletion>,
    /// Deferred foreground completions of the current window.
    fg_buf: Vec<FgDone>,
    /// Lane-local events processed (profiling).
    events: u64,
    /// Time (nanos) of the last event popped in the current drain call,
    /// `u64::MAX` when the shard popped nothing. Folded across shards
    /// this reconstructs the chronologically last event a macro-step
    /// processed — the serial driver's `end_time` — without replaying.
    last_pop: u64,
}

impl Shard {
    /// Build a shard with its arenas pre-sized for `lanes` lanes, so
    /// steady-state reset-and-replay cycles never touch the allocator
    /// (lazy invalidation makes the heap's high-water mark mildly
    /// seed-dependent; the slack absorbs it).
    fn with_capacity(lanes: usize) -> Self {
        Shard {
            heap: BinaryHeap::with_capacity(2 * lanes + 128),
            scratch: Vec::with_capacity(64),
            fg_buf: Vec::with_capacity(128),
            events: 0,
            last_pop: u64::MAX,
        }
    }
}

/// Shared read-only context for a shard drain. Only state that is
/// guaranteed frozen between global decision points may appear here.
struct ShardCtx<'a> {
    jobs: &'a [(u64, CompetingLoad)],
    ost_count: usize,
    /// Drain horizon in nanoseconds (inclusive).
    horizon: u64,
    elision: bool,
}

/// Wall-time breakdown of a run, captured when profiling is enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// Seconds spent draining shard heaps (OST advancement) — the
    /// parallelizable phase.
    pub ost_advance_s: f64,
    /// Seconds spent merging and applying deferred foreground
    /// completions — serial by design.
    pub harvest_merge_s: f64,
    /// Macro-step windows executed.
    pub windows: u64,
    /// Windows dispatched on the shard pool (vs drained inline).
    pub parallel_windows: u64,
    /// Lane-local events processed across all shards.
    pub shard_events: u64,
    /// Global events processed.
    pub global_events: u64,
}

#[derive(Debug, Default)]
struct Prof {
    drain: std::time::Duration,
    flush: std::time::Duration,
    windows: u64,
    par_windows: u64,
    global_events: u64,
}

/// Current combined slowdown factor of one lane.
fn lane_combined(lane: &Lane, i: usize, jobs: &[(u64, CompetingLoad)], ost_count: usize) -> f64 {
    let micro = lane.micro_factor * lane.degraded * lane.brownout;
    combined_factor(
        jobs.iter()
            .filter(|(_, j)| j.covers(i, ost_count))
            .map(|(_, j)| j.factor),
        micro,
    )
}

/// Re-plan one lane's wake after its predicted completion time moved.
/// Nothing is cancelled: a new `(time, gen)` stamp is pushed and any
/// previously pushed wake goes stale (its generation no longer matches).
/// With `elision` (the default engine), an unchanged prediction keeps the
/// already-pushed wake — the single hottest event-queue interaction, as
/// most re-plans are no-ops.
fn replan_lane(lane: &mut Lane, i: usize, now: SimTime, heap: &mut EvHeap, elision: bool) {
    match lane.ost.next_completion().map(|t| t.max(now)) {
        Some(t) => {
            let tn = t.as_nanos();
            if elision && lane.planned_wake == Some(tn) {
                return;
            }
            lane.wake_gen += 1;
            lane.planned_wake = Some(tn);
            heap.push(Reverse(ShardEv {
                t: tn,
                ost: i as u32,
                class: CLASS_WAKE,
                aux: lane.wake_gen,
            }));
        }
        None => lane.planned_wake = None,
    }
}

/// (Re)start a background stream on its lane: allocate a lane-local id,
/// submit, re-plan. A failed target swallows the stream (competing jobs
/// see the failure too).
fn lane_start_background(
    lane: &mut Lane,
    i: usize,
    now: SimTime,
    spec: BgSpec,
    heap: &mut EvHeap,
    elision: bool,
) {
    if lane.health == OstHealth::Failed {
        return;
    }
    let rid = lane.alloc_bg_id(i);
    lane.bg_active.push((rid, spec));
    lane.ost.submit(now, RequestId(rid), spec.bytes, OpKind::WriteDirect);
    replan_lane(lane, i, now, heap, elision);
}

/// Drain every lane-local event with `time <= ctx.horizon` from one
/// shard. This is THE engine loop, shared verbatim by the serial path
/// (shards drained one after another) and the parallel path (shards
/// drained concurrently): it touches only the shard's own lanes, heap and
/// scratch plus the read-only context, so cross-shard interleaving cannot
/// influence any outcome.
fn drain_shard(lanes: &mut [Lane], base: usize, shard: &mut Shard, ctx: &ShardCtx) {
    while let Some(&Reverse(ev)) = shard.heap.peek() {
        if ev.t > ctx.horizon {
            break;
        }
        shard.heap.pop();
        shard.events += 1;
        shard.last_pop = ev.t;
        let t = SimTime::from_nanos(ev.t);
        let i = ev.ost as usize;
        let lane = &mut lanes[i - base];
        match ev.class {
            CLASS_WAKE => {
                if lane.planned_wake != Some(ev.t) || lane.wake_gen != ev.aux {
                    continue; // stale wake, superseded by a later re-plan
                }
                lane.planned_wake = None;
                let mut done = std::mem::take(&mut shard.scratch);
                done.clear();
                lane.ost.advance_into(t, &mut done);
                for c in done.drain(..) {
                    if c.id.0 & BG_BIT != 0 {
                        let pos = lane
                            .bg_active
                            .iter()
                            .position(|&(r, _)| r == c.id.0)
                            .expect("background stream known");
                        let (_, spec) = lane.bg_active.swap_remove(pos);
                        match spec.mean_gap {
                            None => {
                                lane_start_background(lane, i, t, spec, &mut shard.heap, ctx.elision)
                            }
                            Some(gap) => {
                                let token = lane.alloc_bg_id(i);
                                lane.bg_pending.push((token, spec));
                                let delay = SimDuration::from_secs_f64(lane.noise_rng.exp(gap));
                                shard.heap.push(Reverse(ShardEv {
                                    t: (t + delay).as_nanos(),
                                    ost: ev.ost,
                                    class: CLASS_RENEW,
                                    aux: token,
                                }));
                            }
                        }
                    } else {
                        // Foreground chunk: defer — op accounting, the
                        // corruption draw and the completion stream are
                        // serial, merged between windows.
                        lane.fg_count -= 1;
                        shard.fg_buf.push(FgDone {
                            t: ev.t,
                            ost: ev.ost,
                            rid: c.id.0,
                        });
                    }
                }
                shard.scratch = done;
                replan_lane(lane, i, t, &mut shard.heap, ctx.elision);
            }
            CLASS_FLIP => {
                let (factor, delay) = lane.micro.transition(&mut lane.noise_rng);
                lane.micro_factor = factor;
                shard.heap.push(Reverse(ShardEv {
                    t: (t + delay).as_nanos(),
                    ost: ev.ost,
                    class: CLASS_FLIP,
                    aux: 0,
                }));
                let f = lane_combined(lane, i, ctx.jobs, ctx.ost_count);
                lane.ost.set_noise(t, f);
                replan_lane(lane, i, t, &mut shard.heap, ctx.elision);
            }
            _ => {
                // CLASS_RENEW: a bursty stream's gap expired. The token
                // vanishes from `bg_pending` if the stream was torn down
                // meanwhile (target failure) — then the renewal is stale.
                if let Some(pos) = lane.bg_pending.iter().position(|&(tok, _)| tok == ev.aux) {
                    let (_, spec) = lane.bg_pending.swap_remove(pos);
                    lane_start_background(lane, i, t, spec, &mut shard.heap, ctx.elision);
                }
            }
        }
    }
}

/// First global OST index of shard `s` when `n` lanes split `nshards`
/// ways (contiguous ranges; the inverse of `i * nshards / n`).
fn shard_bound(s: usize, n: usize, nshards: usize) -> usize {
    (s * n).div_ceil(nshards)
}

/// Globals that never read or write op accounting, the completion
/// stream, or corruption state (they touch lanes, the job population,
/// the queue, or the MDS freeze flag only). The serial foreground apply
/// commutes exactly with such an event, so it may be deferred past it
/// onto the next window — where it overlaps the parallel shard drain.
fn op_neutral(ev: &Internal) -> bool {
    matches!(
        ev,
        Internal::JobArrival
            | Internal::JobDeparture(_)
            | Internal::BrownoutEnd(..)
            | Internal::OstRecover(..)
            | Internal::MdsRecover(_)
    )
}

/// Silent-corruption decision for one data-write chunk completing on OST
/// `i` at `now` (free-function form so the pipelined apply can run while
/// `lanes`/`shards` are mutably borrowed by a drain in flight).
fn corrupt_part(
    req_to_op: &FxHashMap<u64, u64>,
    ops: &mut FxHashMap<u64, OpState>,
    corrupt_windows: &[(usize, SimTime, Option<SimTime>, f64)],
    corrupt_rng: &mut Rng,
    now: SimTime,
    rid: RequestId,
    i: usize,
) {
    let Some(&op_id) = req_to_op.get(&rid.0) else {
        return;
    };
    let Some(op) = ops.get(&op_id) else {
        return;
    };
    if op.kind != CompletionKind::Write {
        return;
    }
    let rate = corrupt_windows
        .iter()
        .filter(|&&(ost, start, end, _)| {
            ost == i && start <= now && end.map(|e| now <= e).unwrap_or(true)
        })
        .map(|&(_, _, _, r)| r)
        .fold(0.0f64, f64::max);
    if rate > 0.0 && corrupt_rng.chance(rate) {
        ops.get_mut(&op_id).expect("op state exists").corrupt_ost = Some(OstId(i));
    }
}

/// Account one finished (or aborted) constituent request against its
/// operation (free-function form — see [`corrupt_part`]).
fn finish_part(
    req_to_op: &mut FxHashMap<u64, u64>,
    ops: &mut FxHashMap<u64, OpState>,
    corrupt_log: &mut Vec<(OstId, SimTime)>,
    out: &mut Vec<StorageCompletion>,
    now: SimTime,
    rid: RequestId,
    error: bool,
) {
    let op_id = req_to_op.remove(&rid.0).expect("completion for unknown request");
    let op = ops.get_mut(&op_id).expect("op state exists");
    op.pending -= 1;
    op.error |= error;
    if op.pending == 0 {
        let op = ops.remove(&op_id).expect("op state exists");
        if let (Some(ost), false) = (op.corrupt_ost, op.error) {
            // The write took effect but carries a silent bit-flip;
            // key the log by completion time so it correlates with
            // the protocol's write records.
            corrupt_log.push((ost, now));
        }
        out.push(StorageCompletion {
            tag: op.tag,
            bytes: op.total_bytes,
            submitted: op.submitted,
            finished: now,
            kind: op.kind,
            error: op.error,
        });
    }
}

/// Drain a collected (sorted) foreground merge buffer through the op,
/// corruption and completion accounting. Touches none of the lane or
/// shard state, so a deferred apply may overlap a parallel drain.
#[allow(clippy::too_many_arguments)]
fn apply_fg_merge(
    fg_merge: &mut Vec<FgDone>,
    req_to_op: &mut FxHashMap<u64, u64>,
    ops: &mut FxHashMap<u64, OpState>,
    corrupt_windows: &[(usize, SimTime, Option<SimTime>, f64)],
    corrupt_rng: &mut Rng,
    corrupt_log: &mut Vec<(OstId, SimTime)>,
    out: &mut Vec<StorageCompletion>,
) {
    for f in fg_merge.drain(..) {
        let time = SimTime::from_nanos(f.t);
        corrupt_part(req_to_op, ops, corrupt_windows, corrupt_rng, time, RequestId(f.rid), f.ost as usize);
        finish_part(req_to_op, ops, corrupt_log, out, time, RequestId(f.rid), false);
    }
}

/// The storage half of the co-simulation.
pub struct StorageSystem {
    /// Machine parameters, shared: campaign sweeps hand every replicate
    /// the same `Arc` instead of deep-cloning the config per run.
    cfg: std::sync::Arc<MachineConfig>,
    /// Per-OST lanes, partitioned contiguously across `shards`.
    lanes: Vec<Lane>,
    /// Per-shard event heaps and arenas (`shards.len()` == shard count;
    /// 1 = serial).
    shards: Vec<Shard>,
    /// Parked workers for parallel windows (`None` below 2 threads).
    pool: Option<ShardPool>,
    fs: FileSystem,
    mds: Mds,
    jobs_model: JobLoadModel,
    /// Active competing jobs, sorted by id (ids are handed out
    /// monotonically, so pushes keep the order). A sorted vector instead
    /// of a hash map: [`lane_combined`] folds an f64 product over this
    /// collection, and hash-map iteration order depends on the map's
    /// capacity history — a reset-and-reused map could disagree with a
    /// fresh one in the last ulp. Id order is history-independent.
    active_jobs: Vec<(u64, CompetingLoad)>,
    next_job_id: u64,
    /// Global decision points only; lane-local traffic lives in shards.
    queue: EventQueue<Internal>,
    mds_token: Option<(EventToken, SimTime)>,
    ops: FxHashMap<u64, OpState>,
    req_to_op: FxHashMap<u64, u64>,
    /// Bumped per MDS outage, for stale-recovery filtering.
    mds_gen: u64,
    /// Installed fault events (referenced by queue index).
    fault_events: Vec<FaultEvent>,
    next_req: u64,
    next_op: u64,
    rng: Rng,
    /// Isolated RNG stream for silent-corruption draws: taken from the
    /// same seeder as `rng` but advanced independently, so corruption
    /// decisions never perturb the main stochastic timeline (noise, jobs,
    /// background gaps stay byte-identical with or without corruption).
    corrupt_rng: Rng,
    /// Active silent-corruption windows: (ost index, start, end, rate).
    corrupt_windows: Vec<(usize, SimTime, Option<SimTime>, f64)>,
    /// Silently corrupted data writes: (target, op completion time).
    corrupt_log: Vec<(OstId, SimTime)>,
    /// Torn-write abort instants: (target, tear time).
    torn_log: Vec<(OstId, SimTime)>,
    /// Reusable harvest buffer for MDS wakes.
    mds_scratch: Vec<crate::mds::MdsCompletion>,
    /// Reusable merge buffer for deferred foreground completions.
    fg_merge: Vec<FgDone>,
    /// True while `fg_merge` holds collected-but-unapplied completions:
    /// the apply was deferred past an op-neutral global so the next
    /// window's parallel drain can overlap it. Always false when control
    /// returns to the driver.
    fg_deferred: bool,
    /// Memoized [`StorageSystem::next_event_time`] (`None` = dirty).
    /// The driver probes the next storage instant once per loop turn;
    /// without the cache that probe re-scans every shard heap head even
    /// when nothing moved.
    next_cache: Cell<Option<Option<SimTime>>>,
    /// Reusable buffer for the OST indices a competing job covers
    /// (arrival/departure noise re-application).
    covered_scratch: Vec<usize>,
    /// Reusable per-stripe-slot scratch for file range mapping.
    stripe_counts: Vec<u64>,
    /// Reusable chunk list for file range mapping.
    chunk_scratch: Vec<(OstId, u64)>,
    /// Wall-time phase profile (enabled via
    /// [`StorageSystem::enable_profiling`]).
    prof: Option<Box<Prof>>,
    out: Vec<StorageCompletion>,
}

impl StorageSystem {
    /// Build a storage system for `cfg`, seeding all stochastic elements
    /// from `seed`. Accepts an owned config or a shared
    /// `Arc<MachineConfig>`; replicates of a sweep pass clones of one
    /// `Arc` so the config is built (and dropped) once.
    pub fn new(cfg: impl Into<std::sync::Arc<MachineConfig>>, seed: u64) -> Self {
        let cfg = cfg.into();
        let mut seeder = SplitMix64::new(seed);
        let rng = seeder.stream();
        let corrupt_rng = seeder.stream();
        let mut shard = Shard::with_capacity(cfg.ost_count);
        let mut lanes = Vec::with_capacity(cfg.ost_count);
        for i in 0..cfg.ost_count {
            let mut noise_rng = seeder.stream();
            let (proc_, first) = NoiseProcess::new(&cfg.noise.micro, &mut noise_rng);
            let micro_factor = proc_.factor();
            if let Some(delay) = first {
                shard.heap.push(Reverse(ShardEv {
                    t: (SimTime::ZERO + delay).as_nanos(),
                    ost: i as u32,
                    class: CLASS_FLIP,
                    aux: 0,
                }));
            }
            lanes.push(Lane {
                ost: Ost::new(cfg.ost.clone()),
                micro: proc_,
                micro_factor,
                noise_rng,
                degraded: 1.0,
                brownout: 1.0,
                health: OstHealth::Healthy,
                health_gen: 0,
                error_fail_times: Vec::new(),
                planned_wake: None,
                wake_gen: 0,
                bg_active: Vec::new(),
                bg_pending: Vec::new(),
                bg_next: 0,
                fg_count: 0,
            });
        }
        let jobs_model = JobLoadModel::new(cfg.noise.jobs.clone(), cfg.ost_count);
        let fs = FileSystem::new(
            cfg.ost_count,
            cfg.max_stripe_count,
            cfg.default_stripe_count,
            cfg.stripe_size,
        );
        let mds = Mds::new(cfg.mds.clone());
        let mut sys = StorageSystem {
            cfg,
            lanes,
            shards: vec![shard],
            pool: None,
            fs,
            mds,
            jobs_model,
            active_jobs: Vec::new(),
            next_job_id: 0,
            queue: EventQueue::new(),
            mds_token: None,
            ops: FxHashMap::default(),
            req_to_op: FxHashMap::default(),
            mds_gen: 0,
            fault_events: Vec::new(),
            next_req: 0,
            next_op: 0,
            rng,
            corrupt_rng,
            corrupt_windows: Vec::new(),
            corrupt_log: Vec::new(),
            torn_log: Vec::new(),
            mds_scratch: Vec::with_capacity(32),
            fg_merge: Vec::with_capacity(256),
            fg_deferred: false,
            next_cache: Cell::new(None),
            covered_scratch: Vec::new(),
            stripe_counts: Vec::new(),
            chunk_scratch: Vec::new(),
            prof: None,
            out: Vec::new(),
        };
        // The global queue only holds decision points now (MDS wakes, job
        // churn, fault edits) — small, but its live count is mildly
        // seed-dependent, and steady-state sweep seeds must never grow it.
        // Same story for the op-accounting maps and the job population:
        // concurrent high-water marks vary a little per seed, and the
        // fleet sweep's zero-allocation contract covers all of them.
        sys.queue.reserve(64);
        sys.ops.reserve(256);
        sys.req_to_op.reserve(512);
        sys.active_jobs.reserve(64);
        sys.init_jobs();
        // Apply initial noise to every OST.
        for i in 0..sys.lanes.len() {
            let f = lane_combined(&sys.lanes[i], i, &sys.active_jobs, sys.lanes.len());
            sys.lanes[i].ost.set_noise(SimTime::ZERO, f);
        }
        sys
    }

    /// Re-seed the system for a fresh run without reallocating: every
    /// stochastic element is rebuilt in the exact construction order of
    /// [`StorageSystem::new`] (so a reset system is byte-identical to a
    /// fresh one for the same seed), while queues, heaps, maps and scratch
    /// buffers keep their capacity — as does the shard layout and its
    /// worker pool. The file *table* survives with sizes zeroed — sweep
    /// runs replay an identical per-seed workload, so existing `FileId`s
    /// stay valid and the per-seed create path can be skipped. Fault
    /// scripts are cleared; re-install per run if needed.
    pub fn reset(&mut self, seed: u64) {
        let mut seeder = SplitMix64::new(seed);
        self.rng = seeder.stream();
        self.corrupt_rng = seeder.stream();
        self.queue.reset();
        let nshards = self.shards.len();
        let n = self.lanes.len();
        for sh in &mut self.shards {
            sh.heap.clear();
            sh.scratch.clear();
            sh.fg_buf.clear();
            sh.events = 0;
            sh.last_pop = u64::MAX;
        }
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            lane.ost.reset();
            lane.noise_rng = seeder.stream();
            let (proc_, first) = NoiseProcess::new(&self.cfg.noise.micro, &mut lane.noise_rng);
            lane.micro_factor = proc_.factor();
            lane.micro = proc_;
            if let Some(delay) = first {
                self.shards[i * nshards / n].heap.push(Reverse(ShardEv {
                    t: (SimTime::ZERO + delay).as_nanos(),
                    ost: i as u32,
                    class: CLASS_FLIP,
                    aux: 0,
                }));
            }
            lane.degraded = 1.0;
            lane.brownout = 1.0;
            lane.health = OstHealth::Healthy;
            lane.health_gen = 0;
            lane.error_fail_times.clear();
            lane.planned_wake = None;
            lane.wake_gen = 0;
            lane.bg_active.clear();
            lane.bg_pending.clear();
            lane.bg_next = 0;
            lane.fg_count = 0;
        }
        // `jobs_model` is seed-independent (all randomness flows through
        // `rng` at spawn time), so it is retained as-is.
        self.fs.reset_sizes();
        self.mds.reset();
        self.active_jobs.clear();
        self.next_job_id = 0;
        self.mds_token = None;
        self.ops.clear();
        self.req_to_op.clear();
        self.mds_gen = 0;
        self.fault_events.clear();
        self.next_req = 0;
        self.next_op = 0;
        self.corrupt_windows.clear();
        self.corrupt_log.clear();
        self.torn_log.clear();
        self.mds_scratch.clear();
        self.fg_merge.clear();
        self.fg_deferred = false;
        self.touch();
        self.out.clear();
        if let Some(p) = &mut self.prof {
            **p = Prof::default();
        }
        self.init_jobs();
        for i in 0..self.lanes.len() {
            let f = lane_combined(&self.lanes[i], i, &self.active_jobs, self.lanes.len());
            self.lanes[i].ost.set_noise(SimTime::ZERO, f);
        }
    }

    /// Partition the lanes into shards advanced by `threads` threads
    /// (caller included; 1 = fully serial, the default). Pending
    /// lane-local events are redistributed to the new layout, so this is
    /// safe to call between runs *or* mid-run at a global decision point.
    /// The completion stream is byte-identical at any setting.
    pub fn set_shard_threads(&mut self, threads: usize) {
        let threads = threads.max(1).min(self.lanes.len().max(1));
        if threads == self.shards.len() {
            return;
        }
        debug_assert!(!self.fg_deferred, "reshard with a deferred foreground apply");
        self.touch();
        let mut evs: Vec<ShardEv> = Vec::new();
        let mut events = 0u64;
        for sh in &mut self.shards {
            debug_assert!(sh.fg_buf.is_empty(), "reshard inside a window");
            evs.extend(sh.heap.drain().map(|Reverse(e)| e));
            events += sh.events;
        }
        let n = self.lanes.len();
        self.shards.truncate(threads);
        let per_shard = n.div_ceil(threads);
        self.shards.resize_with(threads, || Shard::with_capacity(per_shard));
        self.shards[0].events = events;
        for e in evs {
            self.shards[e.ost as usize * threads / n].heap.push(Reverse(e));
        }
        self.pool = (threads > 1).then(|| ShardPool::new(threads));
    }

    /// Current shard count (1 = serial).
    pub fn shard_threads(&self) -> usize {
        self.shards.len()
    }

    /// Start collecting a wall-time phase breakdown (see
    /// [`StorageSystem::profile`]). Zero overhead unless enabled.
    pub fn enable_profiling(&mut self) {
        self.prof = Some(Box::default());
    }

    /// The phase profile collected so far, if profiling is enabled.
    pub fn profile(&self) -> Option<ProfileReport> {
        self.prof.as_ref().map(|p| ProfileReport {
            ost_advance_s: p.drain.as_secs_f64(),
            harvest_merge_s: p.flush.as_secs_f64(),
            windows: p.windows,
            parallel_windows: p.par_windows,
            shard_events: self.shards.iter().map(|s| s.events).sum(),
            global_events: p.global_events,
        })
    }

    /// Seed the stationary competing-job population (memoryless residual
    /// durations) and the arrival stream.
    fn init_jobs(&mut self) {
        if !self.jobs_model.enabled() {
            return;
        }
        // Poisson(expected_active) initial jobs, Knuth's method.
        let lambda = self.jobs_model.expected_active();
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.rng.f64();
            if p <= l {
                break;
            }
            k += 1;
            if k > 64 {
                break; // guard against pathological parameters
            }
        }
        for _ in 0..k {
            let (job, dur) = self.jobs_model.spawn(&mut self.rng);
            let id = self.next_job_id;
            self.next_job_id += 1;
            self.active_jobs.push((id, job));
            self.queue
                .schedule(SimTime::ZERO + dur, Internal::JobDeparture(id));
        }
        let first = self.jobs_model.next_arrival(&mut self.rng);
        self.queue.schedule(SimTime::ZERO + first, Internal::JobArrival);
    }

    fn shard_of(&self, i: usize) -> usize {
        i * self.shards.len() / self.lanes.len()
    }

    /// Re-apply the combined noise factor to one lane and re-plan its
    /// wake (serial contexts: global events, submissions, fault edits).
    fn apply_noise(&mut self, i: usize, now: SimTime) {
        let f = lane_combined(&self.lanes[i], i, &self.active_jobs, self.lanes.len());
        let s = self.shard_of(i);
        let lane = &mut self.lanes[i];
        lane.ost.set_noise(now, f);
        replan_lane(lane, i, now, &mut self.shards[s].heap, Self::REPLAN_ELISION);
    }

    /// The machine configuration this system was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The shared configuration handle (for identity checks when deciding
    /// whether a pooled system can be reset instead of rebuilt).
    pub fn config_arc(&self) -> &std::sync::Arc<MachineConfig> {
        &self.cfg
    }

    /// Mutable access to the layout layer (file creation).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Read access to the layout layer.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Current external-noise factor of one OST (diagnostics).
    pub fn ost_noise(&self, ost: OstId) -> f64 {
        self.lanes[ost.0].ost.noise_factor()
    }

    /// In-flight stream count on one OST (diagnostics).
    pub fn ost_streams(&self, ost: OstId) -> usize {
        self.lanes[ost.0].ost.active_streams()
    }

    /// Number of competing jobs currently active (diagnostics).
    pub fn active_job_count(&self) -> usize {
        self.active_jobs.len()
    }

    fn fresh_req(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Re-plan elision: when a load or noise change leaves the predicted
    /// wake-up instant where it already is, keep the pushed wake event
    /// instead of stamping a new generation. Replan storms (every submit,
    /// completion and noise flip on a shared OST re-plans it) make this
    /// the single hottest heap interaction; most re-plans are no-ops.
    /// Disabled under `baseline-engine` so before/after benchmarks
    /// measure the pre-optimization behaviour faithfully.
    const REPLAN_ELISION: bool = !cfg!(feature = "baseline-engine");

    fn replan_ost(&mut self, i: usize, now: SimTime) {
        let s = self.shard_of(i);
        replan_lane(
            &mut self.lanes[i],
            i,
            now,
            &mut self.shards[s].heap,
            Self::REPLAN_ELISION,
        );
    }

    fn replan_mds(&mut self, now: SimTime) {
        let next = self.mds.next_completion().map(|t| t.max(now));
        match (next, self.mds_token) {
            (Some(t), Some((tok, planned))) => {
                if Self::REPLAN_ELISION && planned == t {
                    return;
                }
                self.queue.cancel(tok);
                self.mds_token = Some((self.queue.schedule(t, Internal::MdsWake), t));
            }
            (Some(t), None) => {
                self.mds_token = Some((self.queue.schedule(t, Internal::MdsWake), t));
            }
            (None, Some((tok, _))) => {
                self.queue.cancel(tok);
                self.mds_token = None;
            }
            (None, None) => {}
        }
    }

    /// Submit a write covering `[offset, offset+len)` of `file`.
    /// Completion fires when every constituent OST chunk finishes.
    ///
    /// Contract (all submit methods): `now` must be non-decreasing across
    /// calls touching the same target — the co-simulation driver
    /// dispatches in global time order, which guarantees it.
    pub fn submit_file_write(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        tag: u64,
    ) {
        self.submit_file_op(now, file, offset, len, tag, OpKind::Write, CompletionKind::Write);
    }

    /// Submit a read of `[offset, offset+len)` of `file`.
    pub fn submit_file_read(&mut self, now: SimTime, file: FileId, offset: u64, len: u64, tag: u64) {
        self.submit_file_op(now, file, offset, len, tag, OpKind::Read, CompletionKind::Read);
    }

    /// Shared file-op body: maps the range through the layout layer into
    /// the reusable chunk buffers (the per-write hot path of a sweep
    /// allocates nothing).
    #[allow(clippy::too_many_arguments)]
    fn submit_file_op(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        tag: u64,
        kind: OpKind,
        ck: CompletionKind,
    ) {
        let mut counts = std::mem::take(&mut self.stripe_counts);
        let mut chunks = std::mem::take(&mut self.chunk_scratch);
        self.fs.map_range_into(file, offset, len, &mut counts, &mut chunks);
        self.submit_chunks(now, &chunks, len, tag, kind, ck);
        self.stripe_counts = counts;
        self.chunk_scratch = chunks;
    }

    /// Submit a write of `bytes` directly to one OST (bypassing the layout
    /// layer — used by models that manage placement themselves).
    pub fn submit_ost_write(&mut self, now: SimTime, ost: OstId, bytes: u64, tag: u64) {
        let chunks = [(ost, bytes)];
        self.submit_chunks(now, &chunks, bytes, tag, OpKind::Write, CompletionKind::Write);
    }

    fn submit_chunks(
        &mut self,
        now: SimTime,
        chunks: &[(OstId, u64)],
        total: u64,
        tag: u64,
        kind: OpKind,
        ck: CompletionKind,
    ) {
        assert!(!chunks.is_empty(), "write with no chunks");
        self.process_due(now);
        let op_id = self.next_op;
        self.next_op += 1;
        self.ops.insert(
            op_id,
            OpState {
                tag,
                pending: chunks.len(),
                total_bytes: total,
                submitted: now,
                kind: ck,
                error: false,
                corrupt_ost: None,
            },
        );
        for &(ost, bytes) in chunks {
            let rid = self.fresh_req();
            self.req_to_op.insert(rid.0, op_id);
            if self.lanes[ost.0].health == OstHealth::Failed {
                // Error-mode target: the request bounces promptly instead
                // of reaching the server (one RPC round of latency).
                let at = now + SimDuration::from_secs_f64(self.cfg.ost.request_overhead);
                self.queue.schedule(at, Internal::FailFast(rid.0));
            } else {
                self.lanes[ost.0].fg_count += 1;
                self.lanes[ost.0].ost.submit(now, rid, bytes, kind);
                self.replan_ost(ost.0, now);
            }
        }
        self.touch();
    }

    /// Submit an open/create to the metadata server.
    pub fn submit_open(&mut self, now: SimTime, tag: u64) {
        self.submit_meta(now, tag, MetaOp::Open, CompletionKind::Open);
    }

    /// Submit a close to the metadata server.
    pub fn submit_close(&mut self, now: SimTime, tag: u64) {
        self.submit_meta(now, tag, MetaOp::Close, CompletionKind::Close);
    }

    fn submit_meta(&mut self, now: SimTime, tag: u64, op: MetaOp, ck: CompletionKind) {
        self.process_due(now);
        let op_id = self.next_op;
        self.next_op += 1;
        self.ops.insert(
            op_id,
            OpState {
                tag,
                pending: 1,
                total_bytes: 0,
                submitted: now,
                kind: ck,
                error: false,
                corrupt_ost: None,
            },
        );
        let rid = self.fresh_req();
        self.req_to_op.insert(rid.0, op_id);
        self.mds.submit(now, rid, op);
        self.replan_mds(now);
        self.touch();
    }

    /// Degrade one OST to a fixed fraction of its capability from `now`
    /// on (failure injection: a dying disk, a rebuilding RAID set). The
    /// factor multiplies into the noise combination and persists until
    /// [`StorageSystem::restore_ost`].
    pub fn degrade_ost(&mut self, now: SimTime, ost: OstId, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0);
        self.process_due(now);
        self.lanes[ost.0].degraded = factor;
        self.apply_noise(ost.0, now);
        self.touch();
    }

    /// Lift a previous [`StorageSystem::degrade_ost`].
    pub fn restore_ost(&mut self, now: SimTime, ost: OstId) {
        self.process_due(now);
        self.lanes[ost.0].degraded = 1.0;
        self.apply_noise(ost.0, now);
        self.touch();
    }

    /// Install a fault script: every event is scheduled through the
    /// internal DES, so faulted runs stay byte-identical per seed. Call
    /// before driving the system (events must not be in the past).
    pub fn install_faults(&mut self, script: &FaultScript) {
        for ev in &script.events {
            let idx = self.fault_events.len();
            self.fault_events.push(*ev);
            self.queue.schedule(ev.at(), Internal::FaultStart(idx));
        }
        self.touch();
    }

    /// Whether `ost` is currently down (either failure mode).
    pub fn ost_failed(&self, ost: OstId) -> bool {
        self.lanes[ost.0].health != OstHealth::Healthy
    }

    /// Whether data that finished landing on `ost` at time `t` was later
    /// (or at `t`) destroyed by an error-mode failure. Stall-mode outages
    /// never destroy data.
    pub fn ost_lost_data_since(&self, ost: OstId, t: SimTime) -> bool {
        self.lanes[ost.0].error_fail_times.iter().any(|&s| s >= t)
    }

    /// Snapshot the ground truth about quiet damage: silently corrupted
    /// writes, torn-write instants, and currently dead targets. The
    /// integrity mirror of [`StorageSystem::ost_lost_data_since`].
    pub fn integrity_oracle(&self) -> CorruptionOracle {
        CorruptionOracle {
            corrupt: self.corrupt_log.clone(),
            torn: self.torn_log.clone(),
            dead: (0..self.lanes.len())
                .filter(|&i| self.lanes[i].health == OstHealth::Failed)
                .map(OstId)
                .collect(),
            lost: self
                .lanes
                .iter()
                .enumerate()
                .flat_map(|(i, l)| l.error_fail_times.iter().map(move |&t| (OstId(i), t)))
                .collect(),
        }
    }

    /// Install a perpetual background stream on `ost`: a `bytes`-sized
    /// direct write that immediately resubmits itself on completion. This
    /// is the paper's artificial external interference (§IV: three 1 GiB
    /// writers per target on 8 targets).
    pub fn add_background_stream(&mut self, now: SimTime, ost: OstId, bytes: u64) {
        self.process_due(now);
        self.start_background(now, BgSpec {
            ost,
            bytes,
            mean_gap: None,
        });
        self.touch();
    }

    /// Install a bursty background stream: after each completed burst the
    /// stream idles for an exponential gap (mean `mean_gap_secs`) before
    /// writing again — a competing application's duty-cycled IO phases.
    pub fn add_bursty_stream(&mut self, now: SimTime, ost: OstId, bytes: u64, mean_gap_secs: f64) {
        self.process_due(now);
        self.start_background(now, BgSpec {
            ost,
            bytes,
            mean_gap: Some(mean_gap_secs),
        });
        self.touch();
    }

    fn start_background(&mut self, now: SimTime, spec: BgSpec) {
        let i = spec.ost.0;
        let s = self.shard_of(i);
        lane_start_background(
            &mut self.lanes[i],
            i,
            now,
            spec,
            &mut self.shards[s].heap,
            Self::REPLAN_ELISION,
        );
    }

    /// When the storage system next changes state on its own. May report
    /// a stale (superseded) lane wake; advancing to it is harmless — the
    /// wake is discarded on pop — and both execution modes see the same
    /// heads, so the driver's loop stays byte-identical.
    ///
    /// O(1) when nothing has moved since the last probe: the scan result
    /// is memoized and invalidated ([`Self::touch`]) by every mutating
    /// entry point. Debug builds cross-check the cache against a fresh
    /// scan on every hit.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if let Some(cached) = self.next_cache.get() {
            debug_assert_eq!(
                cached,
                self.scan_next_event_time(),
                "stale next_event_time cache"
            );
            return cached;
        }
        let t = self.scan_next_event_time();
        self.next_cache.set(Some(t));
        t
    }

    /// The uncached scan behind [`Self::next_event_time`].
    fn scan_next_event_time(&self) -> Option<SimTime> {
        let mut best = self.queue.peek_time();
        for sh in &self.shards {
            if let Some(&Reverse(ev)) = sh.heap.peek() {
                let t = SimTime::from_nanos(ev.t);
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best
    }

    /// Invalidate the memoized [`Self::next_event_time`]. Called by every
    /// entry point that can move the earliest pending event (schedules,
    /// pops, re-plans).
    fn touch(&self) {
        self.next_cache.set(None);
    }

    /// Earliest pending lane-local event across all shards, in nanos.
    fn next_shard_time(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for sh in &self.shards {
            if let Some(&Reverse(ev)) = sh.heap.peek() {
                best = Some(best.map_or(ev.t, |b| b.min(ev.t)));
            }
        }
        best
    }

    /// Advance internal state to `deadline` (inclusive), returning every
    /// operation completion with `finished <= deadline`, in completion
    /// order.
    pub fn advance_to(&mut self, deadline: SimTime) -> Vec<StorageCompletion> {
        self.process_due(deadline);
        std::mem::take(&mut self.out)
    }

    /// Buffer-reusing form of [`StorageSystem::advance_to`]: appends the
    /// completions to `out` so a driver loop can hand the same allocation
    /// back on every wake.
    pub fn advance_into(&mut self, deadline: SimTime, out: &mut Vec<StorageCompletion>) {
        self.process_due(deadline);
        out.append(&mut self.out);
    }

    /// Safety margin (nanos) subtracted from the engines' foreground
    /// completion bounds: covers the nanosecond rounding of `SimTime`
    /// plus last-ulp float drift between the bound arithmetic and the
    /// settle arithmetic. The bound must be a *true* lower bound — a
    /// completion strictly inside a drained window would surface with
    /// later lane events already processed, which the one-event-at-a-time
    /// driver could never produce.
    const FG_BOUND_GUARD_NANOS: u64 = 2;

    /// A conservative lower bound (nanos) on the earliest instant any
    /// in-flight *foreground* chunk can finish, or `None` when no healthy
    /// lane holds foreground work. Frozen lanes contribute nothing: they
    /// can only thaw at a global event, which bounds every drain window
    /// anyway.
    fn fg_bound(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for lane in &self.lanes {
            if lane.fg_count == 0 {
                continue;
            }
            if let Some(t) = lane.ost.fg_completion_bound() {
                let tn = t.as_nanos().saturating_sub(Self::FG_BOUND_GUARD_NANOS);
                best = Some(best.map_or(tn, |b| b.min(tn)));
            }
        }
        best
    }

    /// **Protocol lookahead.** Advance internal state up to `horizon`
    /// (inclusive) in wide, bound-steered windows, stopping at the first
    /// instant `c` at which one or more operation completions surface;
    /// all completions with `finished <= c` are appended to `out` in
    /// completion order.
    ///
    /// Soundness: the driver guarantees no cluster actor runs before its
    /// next queued event, so `horizon = min(next cluster event, deadline)`
    /// is a sound lookahead horizon; within it, [`Self::fg_bound`] proves
    /// windows free of foreground completions, which are therefore safe
    /// to bulk-drain (noise flips, background renewals, stream wakes)
    /// without ever processing a lane event past an undelivered
    /// completion. The completion stream, every stochastic draw and the
    /// returned last-event time are byte-identical to driving the system
    /// one [`Self::next_event_time`] probe at a time.
    ///
    /// Returns the time of the chronologically last event processed in
    /// this call (the serial driver's `end_time` fold), or `None` when
    /// nothing was due by `horizon`.
    pub fn advance_until_completion(
        &mut self,
        horizon: SimTime,
        out: &mut Vec<StorageCompletion>,
    ) -> Option<SimTime> {
        let fold = |last: Option<u64>, t: u64| -> Option<u64> {
            Some(last.map_or(t, |l| l.max(t)))
        };
        // Residue: an actor submission at delivery time ran `process_due`
        // internally and left completions in `self.out`. The serial
        // driver hands those over at its *next* storage advance — i.e. at
        // the earliest pending storage instant, and only if that instant
        // wins the race against the cluster queue. Mirror that exactly.
        if !self.out.is_empty() {
            let ts = self.next_event_time();
            match ts {
                Some(ts) if ts <= horizon => {
                    let last = self.process_due(ts);
                    out.append(&mut self.out);
                    return last.map(SimTime::from_nanos).or(Some(ts));
                }
                _ => return None,
            }
        }
        let mut last: Option<u64> = None;
        loop {
            let gt = self.queue.peek_time();
            let win = match gt {
                Some(t) if t <= horizon => t,
                _ => horizon,
            };
            let win_n = win.as_nanos();
            // Foreground-bound state for this window. The bound scan is
            // O(foreground streams), so it is managed adaptively:
            //
            //  * `Unscanned` — pay nothing until a completion-free step
            //    proves there is a noise run to amortize a scan over; a
            //    call whose first instant already delivers never scans.
            //  * `NoFg` — no foreground work in flight: the whole window
            //    is completion-free (op completions need a foreground
            //    chunk; metadata ops finish at global MDS wakes).
            //  * `Slack(b)` — a computed bound with room to batch. Valid
            //    for the rest of the window (no foreground submission or
            //    fault can occur between globals, and the engines bound
            //    remaining bytes at peak rate, so lane-local drains never
            //    pull a completion below an earlier bound); refreshed
            //    when a batch consumes it.
            //  * `Exhausted` — the bound stopped offering slack
            //    (completion-dense stretch): degrade to bound-free
            //    single-instant steps, which cost what a stepwise
            //    advance costs, instead of rescanning per event.
            #[derive(Clone, Copy)]
            enum Bound {
                Unscanned,
                NoFg,
                Slack(u64),
                Exhausted,
            }
            let mut bound = Bound::Unscanned;
            // Inner loop: bulk-drain lane-local events in windows proven
            // completion-free, collapsing to single-event steps only when
            // the bound offers no slack.
            while let Some(ne) = self.next_shard_time().filter(|&t| t <= win_n) {
                let target = match bound {
                    Bound::Unscanned | Bound::Exhausted => ne,
                    Bound::NoFg => win_n,
                    Bound::Slack(b) if b > ne => b.min(win_n),
                    Bound::Slack(_) => {
                        bound = Bound::Exhausted;
                        ne
                    }
                };
                let popped = self.timed_drain(SimTime::from_nanos(target));
                if popped != u64::MAX {
                    last = fold(last, popped);
                }
                // Must apply (not defer): only op accounting can tell
                // whether a harvested chunk finished an operation.
                self.timed_flush();
                if !self.out.is_empty() {
                    // Complete the instant: drain time-ties (including
                    // any global at exactly `target`) before delivering,
                    // exactly as the serial loop's advance would.
                    if let Some(t2) = self.process_due(SimTime::from_nanos(target)) {
                        last = fold(last, t2);
                    }
                    out.append(&mut self.out);
                    self.touch();
                    return last.map(SimTime::from_nanos);
                }
                let rescan = match bound {
                    Bound::Unscanned => true,
                    Bound::Slack(b) => b <= target,
                    Bound::NoFg | Bound::Exhausted => false,
                };
                if rescan {
                    bound = match self.fg_bound() {
                        None => Bound::NoFg,
                        Some(b) if b > target => Bound::Slack(b),
                        Some(_) => Bound::Exhausted,
                    };
                }
            }
            // No lane event remains at or before `win`: handle one global
            // if it is due, then re-derive the window.
            match gt {
                Some(t) if t <= horizon => {
                    let (t, ev) = self.queue.pop().expect("peeked event exists");
                    if let Some(p) = &mut self.prof {
                        p.global_events += 1;
                    }
                    self.handle_global(t, ev);
                    last = fold(last, t.as_nanos());
                    if !self.out.is_empty() {
                        if let Some(t2) = self.process_due(t) {
                            last = fold(last, t2);
                        }
                        out.append(&mut self.out);
                        self.touch();
                        return last.map(SimTime::from_nanos);
                    }
                }
                _ => {
                    self.touch();
                    return last.map(SimTime::from_nanos);
                }
            }
        }
    }

    /// Process every internal event with `time <= deadline`: the
    /// **macro-step loop**. Each iteration computes the conservative
    /// horizon — the earlier of the next global event and `deadline` —
    /// drains every shard's lane-local events up to it (in parallel when
    /// the pool is on and at least two shards have due work), merges the
    /// deferred foreground completions in `(time, target, submission)`
    /// order, then handles at most one global event. Shard events win
    /// time ties against global events by construction, identically in
    /// both modes.
    ///
    /// Called from [`Self::advance_to`] and from every external entry
    /// point (submissions, degrade/restore), so state mutations at `now`
    /// can never observe an OST that still owes progress to an earlier
    /// queued wake — that would drive `Ost::settle` backwards in time.
    /// Returns the time (nanos) of the chronologically last event this
    /// call processed — shard pops (stale wakes included) and global
    /// events alike — or `None` when nothing was due. That is exactly
    /// the last instant the serial one-event-at-a-time driver would have
    /// advanced to, so the lookahead driver can reproduce its `end_time`
    /// without replaying the event sequence.
    fn process_due(&mut self, deadline: SimTime) -> Option<u64> {
        let mut last: Option<u64> = None;
        loop {
            let gt = self.queue.peek_time();
            let horizon = match gt {
                Some(t) if t <= deadline => t,
                _ => deadline,
            };
            let popped = self.timed_drain(horizon);
            if popped != u64::MAX {
                last = Some(last.map_or(popped, |l| l.max(popped)));
            }
            match gt {
                Some(t) if t <= deadline => {
                    let (t, ev) = self.queue.pop().expect("peeked event exists");
                    if let Some(p) = &mut self.prof {
                        p.global_events += 1;
                    }
                    // Pipelining: past an op-neutral global the serial
                    // foreground apply commutes exactly, so it is only
                    // *collected* (merged + sorted) here and applied
                    // overlapped with the next window's parallel drain.
                    if self.pool.is_some() && op_neutral(&ev) {
                        self.timed_collect();
                    } else {
                        self.timed_flush();
                    }
                    self.handle_global(t, ev);
                    let tn = t.as_nanos();
                    last = Some(last.map_or(tn, |l| l.max(tn)));
                }
                _ => {
                    self.timed_flush();
                    break;
                }
            }
        }
        debug_assert!(!self.fg_deferred, "deferred apply leaked past process_due");
        self.touch();
        last
    }

    /// [`Self::drain_shards`] under the profiling clock. Returns the
    /// latest event time popped (nanos; `u64::MAX` when nothing was due).
    fn timed_drain(&mut self, horizon: SimTime) -> u64 {
        if self.prof.is_some() {
            let t0 = std::time::Instant::now();
            let popped = self.drain_shards(horizon);
            let dt = t0.elapsed();
            let p = self.prof.as_mut().expect("profiling enabled");
            p.drain += dt;
            p.windows += 1;
            popped
        } else {
            self.drain_shards(horizon)
        }
    }

    /// Collect + apply the deferred foreground completions (the full
    /// serial harvest) under the profiling clock.
    fn timed_flush(&mut self) {
        if self.prof.is_some() {
            let t0 = std::time::Instant::now();
            self.collect_foreground();
            self.apply_foreground();
            let dt = t0.elapsed();
            self.prof.as_mut().expect("profiling enabled").flush += dt;
        } else {
            self.collect_foreground();
            self.apply_foreground();
        }
    }

    /// Collect-only half of [`Self::timed_flush`]: merge + sort now,
    /// leave the apply for the next window's drain to overlap.
    fn timed_collect(&mut self) {
        if self.prof.is_some() {
            let t0 = std::time::Instant::now();
            self.collect_foreground();
            let dt = t0.elapsed();
            self.prof.as_mut().expect("profiling enabled").flush += dt;
        } else {
            self.collect_foreground();
        }
    }

    /// Drain every shard's lane-local events up to `horizon`, inline or
    /// on the pool. The two dispatch modes run the identical
    /// [`drain_shard`] body over the identical per-shard state, so the
    /// choice (and the thread count) cannot affect any simulation
    /// outcome — only wall-clock time.
    ///
    /// A foreground apply deferred by the previous window runs here
    /// first — on the caller thread, *overlapped* with the parallel
    /// dispatch when the pool is engaged (sound because the apply
    /// touches only op/completion state and the drains touch only
    /// lane/shard state; the borrow split below proves the disjointness).
    ///
    /// Returns the latest event time (nanos) any shard popped, or
    /// `u64::MAX` when no shard had due work.
    fn drain_shards(&mut self, horizon: SimTime) -> u64 {
        let StorageSystem {
            lanes,
            shards,
            pool,
            prof,
            active_jobs,
            fg_merge,
            fg_deferred,
            ops,
            req_to_op,
            out,
            corrupt_rng,
            corrupt_windows,
            corrupt_log,
            ..
        } = self;
        let hn = horizon.as_nanos();
        let n = lanes.len();
        let ctx = ShardCtx {
            jobs: active_jobs,
            ost_count: n,
            horizon: hn,
            elision: Self::REPLAN_ELISION,
        };
        let mut apply = || {
            if *fg_deferred {
                *fg_deferred = false;
                apply_fg_merge(fg_merge, req_to_op, ops, corrupt_windows, corrupt_rng, corrupt_log, out);
            }
        };
        let nshards = shards.len();
        if nshards == 1 {
            apply();
            let sh = &mut shards[0];
            sh.last_pop = u64::MAX;
            drain_shard(lanes, 0, sh, &ctx);
            return sh.last_pop;
        }
        let due = shards
            .iter()
            .filter(|s| s.heap.peek().is_some_and(|&Reverse(e)| e.t <= hn))
            .count();
        if due == 0 {
            apply();
            return u64::MAX;
        }
        struct Task<'a> {
            lanes: &'a mut [Lane],
            base: usize,
            shard: &'a mut Shard,
        }
        let mut tasks: Vec<Task> = Vec::with_capacity(nshards);
        let mut rest: &mut [Lane] = lanes;
        let mut base = 0usize;
        for (s, shard) in shards.iter_mut().enumerate() {
            shard.last_pop = u64::MAX;
            let end = shard_bound(s + 1, n, nshards);
            let (head, tail) = rest.split_at_mut(end - base);
            tasks.push(Task { lanes: head, base, shard });
            rest = tail;
            base = end;
        }
        match pool {
            // Parallel dispatch pays a fixed synchronization toll; a
            // window with work in a single shard runs inline instead
            // (identical results either way — see above).
            Some(pool) if due >= 2 => {
                if let Some(p) = prof {
                    p.par_windows += 1;
                }
                let ctx = &ctx;
                let slots: Vec<Mutex<Option<Task>>> =
                    tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
                pool.run_with_serial(
                    slots.len(),
                    &|s| {
                        let task = slots[s].lock().unwrap().take();
                        let task = task.expect("shard task claimed once");
                        drain_shard(task.lanes, task.base, task.shard, ctx);
                    },
                    &mut apply,
                );
            }
            _ => {
                apply();
                for task in tasks {
                    drain_shard(task.lanes, task.base, task.shard, &ctx);
                }
            }
        }
        shards
            .iter()
            .map(|s| s.last_pop)
            .filter(|&t| t != u64::MAX)
            .max()
            .unwrap_or(u64::MAX)
    }

    /// Merge the shards' deferred foreground completions into `fg_merge`
    /// in `(time, target)` order (stable, so same-lane completions keep
    /// their in-shard order — which is submission order at equal times)
    /// without applying them yet.
    fn collect_foreground(&mut self) {
        debug_assert!(!self.fg_deferred, "collect over an unapplied merge buffer");
        if self.shards.iter().all(|s| s.fg_buf.is_empty()) {
            return;
        }
        let merge = &mut self.fg_merge;
        for sh in &mut self.shards {
            merge.append(&mut sh.fg_buf);
        }
        merge.sort_by_key(|f| (f.t, f.ost));
        self.fg_deferred = true;
    }

    /// Apply a collected merge buffer through op accounting, the
    /// corruption draw and the completion stream. Together with
    /// [`Self::collect_foreground`] this is the old `flush_foreground`,
    /// split so the apply half can be deferred past op-neutral globals
    /// (and run overlapped inside [`Self::drain_shards`]). Runs before
    /// every op-touching global, so the out stream and the op/corruption
    /// accounting observe exactly the serial event order regardless of
    /// how the window was executed.
    fn apply_foreground(&mut self) {
        if !self.fg_deferred {
            return;
        }
        self.fg_deferred = false;
        let StorageSystem {
            fg_merge,
            ops,
            req_to_op,
            out,
            corrupt_rng,
            corrupt_windows,
            corrupt_log,
            ..
        } = self;
        apply_fg_merge(fg_merge, req_to_op, ops, corrupt_windows, corrupt_rng, corrupt_log, out);
    }

    /// Apply one global event at its scheduled instant.
    fn handle_global(&mut self, t: SimTime, ev: Internal) {
        match ev {
            Internal::MdsWake => {
                self.mds_token = None;
                let mut done = std::mem::take(&mut self.mds_scratch);
                self.mds.advance_into(t, &mut done);
                for c in done.drain(..) {
                    self.complete_part(t, c.id, false);
                }
                self.mds_scratch = done;
                self.replan_mds(t);
            }
            Internal::JobArrival => {
                let (job, dur) = self.jobs_model.spawn(&mut self.rng);
                let id = self.next_job_id;
                self.next_job_id += 1;
                let mut covered = std::mem::take(&mut self.covered_scratch);
                covered.clear();
                covered.extend(job.osts(self.cfg.ost_count));
                self.active_jobs.push((id, job));
                self.queue.schedule(t + dur, Internal::JobDeparture(id));
                let next = self.jobs_model.next_arrival(&mut self.rng);
                self.queue.schedule(t + next, Internal::JobArrival);
                for &i in &covered {
                    self.apply_noise(i, t);
                }
                self.covered_scratch = covered;
            }
            Internal::JobDeparture(id) => {
                if let Ok(pos) = self.active_jobs.binary_search_by_key(&id, |&(i, _)| i) {
                    let (_, job) = self.active_jobs.remove(pos);
                    let mut covered = std::mem::take(&mut self.covered_scratch);
                    covered.clear();
                    covered.extend(job.osts(self.cfg.ost_count));
                    for &i in &covered {
                        self.apply_noise(i, t);
                    }
                    self.covered_scratch = covered;
                }
            }
            Internal::FaultStart(idx) => {
                let ev = self.fault_events[idx];
                self.start_fault(t, ev);
            }
            Internal::BrownoutEnd(i, factor) => {
                self.lanes[i].brownout = (self.lanes[i].brownout / factor).min(1.0);
                self.apply_noise(i, t);
            }
            Internal::OstRecover(i, gen) => {
                if self.lanes[i].health_gen == gen && self.lanes[i].health != OstHealth::Healthy {
                    if self.lanes[i].ost.is_frozen() {
                        self.lanes[i].ost.unfreeze(t);
                    }
                    self.lanes[i].health = OstHealth::Healthy;
                    self.apply_noise(i, t);
                }
            }
            Internal::MdsRecover(gen) => {
                if gen == self.mds_gen && self.mds.is_frozen() {
                    self.mds.unfreeze(t);
                    self.replan_mds(t);
                }
            }
            Internal::FailFast(rid) => {
                self.complete_part(t, RequestId(rid), true);
            }
        }
    }

    /// Apply one fault event at its scheduled instant.
    fn start_fault(&mut self, t: SimTime, ev: FaultEvent) {
        match ev {
            FaultEvent::Brownout {
                ost,
                factor,
                duration,
                ..
            } => {
                let i = ost.0;
                self.lanes[i].brownout = (self.lanes[i].brownout * factor).max(1e-9);
                self.apply_noise(i, t);
                if let Some(d) = duration {
                    self.queue.schedule(t + d, Internal::BrownoutEnd(i, factor));
                }
            }
            FaultEvent::OstFail {
                ost,
                mode,
                recover_at,
                ..
            } => {
                let i = ost.0;
                self.lanes[i].health_gen += 1;
                if self.lanes[i].ost.is_frozen() {
                    // A new fault supersedes a previous stall.
                    self.lanes[i].ost.unfreeze(t);
                }
                match mode {
                    FailMode::Stall => {
                        self.lanes[i].health = OstHealth::Stalled;
                        self.lanes[i].ost.freeze(t);
                    }
                    FailMode::Error => {
                        self.lanes[i].health = OstHealth::Failed;
                        self.lanes[i].error_fail_times.push(t);
                        for rid in self.lanes[i].ost.fail_all(t) {
                            if rid.0 & BG_BIT != 0 {
                                // Interference stream dies with the target.
                                let lane = &mut self.lanes[i];
                                if let Some(pos) =
                                    lane.bg_active.iter().position(|&(r, _)| r == rid.0)
                                {
                                    lane.bg_active.swap_remove(pos);
                                }
                                continue;
                            }
                            self.complete_part(t, rid, true);
                        }
                        self.lanes[i].fg_count = 0;
                    }
                }
                if let Some(r) = recover_at {
                    let gen = self.lanes[i].health_gen;
                    self.queue
                        .schedule(if r > t { r } else { t }, Internal::OstRecover(i, gen));
                }
                self.apply_noise(i, t);
            }
            FaultEvent::MdsOutage { duration, .. } => {
                self.mds_gen += 1;
                self.mds.freeze(t);
                self.replan_mds(t);
                self.queue.schedule(t + duration, Internal::MdsRecover(self.mds_gen));
            }
            FaultEvent::SilentCorruption {
                ost,
                duration,
                rate,
                ..
            } => {
                // Deliberately schedules nothing and touches no OST state:
                // a silent-corruption window must leave the event timeline
                // byte-identical to a clean run.
                let end = duration.map(|d| t + d);
                self.corrupt_windows.push((ost.0, t, end, rate));
            }
            FaultEvent::TornWrite { ost, .. } => {
                let i = ost.0;
                let mut torn_any = false;
                for rid in self.lanes[i].ost.fail_all(t) {
                    if rid.0 & BG_BIT != 0 {
                        let lane = &mut self.lanes[i];
                        let pos = lane.bg_active.iter().position(|&(r, _)| r == rid.0);
                        if let Some(pos) = pos {
                            // The target stays healthy, so the interference
                            // stream restarts immediately (its burst begins
                            // over — only its own prefix was torn).
                            let (_, spec) = lane.bg_active.swap_remove(pos);
                            self.start_background(t, spec);
                        }
                        continue;
                    }
                    torn_any = true;
                    self.complete_part(t, rid, true);
                }
                self.lanes[i].fg_count = 0;
                if torn_any {
                    self.torn_log.push((ost, t));
                }
                self.replan_ost(i, t);
            }
        }
    }

    /// Account one finished (or aborted) constituent request against its
    /// operation, surfacing the operation completion when the last part
    /// resolves.
    fn complete_part(&mut self, now: SimTime, rid: RequestId, error: bool) {
        finish_part(
            &mut self.req_to_op,
            &mut self.ops,
            &mut self.corrupt_log,
            &mut self.out,
            now,
            rid,
            error,
        );
    }

    /// Convenience for non-cluster experiments (pure storage tests): run
    /// until all submitted operations complete or `deadline` passes,
    /// returning completions.
    pub fn run_until_quiet(&mut self, deadline: SimTime) -> Vec<StorageCompletion> {
        let mut all = Vec::new();
        self.run_until_quiet_into(deadline, &mut all);
        all
    }

    /// Allocation-free [`StorageSystem::run_until_quiet`]: completions are
    /// appended to a caller-owned (and reusable) buffer. Stops as soon as
    /// no submitted operation remains pending, leaving background noise
    /// events unconsumed — the sweep engine's steady-state drain loop.
    pub fn run_until_quiet_into(&mut self, deadline: SimTime, out: &mut Vec<StorageCompletion>) {
        loop {
            if self.ops.is_empty() {
                break;
            }
            match self.next_event_time() {
                Some(t) if t <= deadline => self.advance_into(t, out),
                _ => break,
            }
        }
    }

    /// Create a file with an explicit stripe size (the ADIOS MPI-IO method
    /// sets the stripe width to the per-rank buffer size so each rank's
    /// region maps to a single OST).
    pub fn create_file_with_stripe_size(
        &mut self,
        name: impl Into<String>,
        spec: StripeSpec,
        stripe_size: u64,
    ) -> FileId {
        let id = self.fs.create(name, spec);
        self.fs.set_stripe_size(id, stripe_size);
        id
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{jaguar, testbed};
    use simcore::units::MIB;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn drain(sys: &mut StorageSystem) -> Vec<StorageCompletion> {
        sys.run_until_quiet(t(1e6))
    }

    #[test]
    fn single_write_completes_once() {
        let mut sys = StorageSystem::new(testbed(), 1);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        sys.submit_file_write(SimTime::ZERO, f, 0, 8 * MIB, 77);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 77);
        assert_eq!(done[0].bytes, 8 * MIB);
        assert!(done[0].finished > SimTime::ZERO);
    }

    #[test]
    fn striped_write_waits_for_all_chunks() {
        let mut sys = StorageSystem::new(testbed(), 2);
        let f = sys
            .fs_mut()
            .create("s", StripeSpec::Pinned(vec![OstId(0), OstId(1)]));
        sys.submit_file_write(SimTime::ZERO, f, 0, 4 * MIB, 1);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 1, "one completion for the whole op");
        assert_eq!(done[0].bytes, 4 * MIB);
    }

    #[test]
    fn concurrent_writers_on_one_ost_interfere() {
        // Time for 1 writer alone vs 8 writers sharing one OST
        // (disk-lane sizes): per-writer time grows superlinearly.
        let cfg = testbed();
        let bytes = 128 * MIB; // > testbed cache
        let mut solo = StorageSystem::new(cfg.clone(), 3);
        solo.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let solo_done = drain(&mut solo);
        let solo_time = (solo_done[0].finished - solo_done[0].submitted).as_secs_f64();

        let mut shared = StorageSystem::new(cfg, 3);
        for i in 0..8 {
            shared.submit_ost_write(SimTime::ZERO, OstId(0), bytes, i);
        }
        let done = drain(&mut shared);
        let max_time = done
            .iter()
            .map(|c| (c.finished - c.submitted).as_secs_f64())
            .fold(0.0, f64::max);
        // 8-way sharing with contention penalty: slower than 5x solo even
        // though solo itself is stream-capped below the disk peak.
        assert!(
            max_time > 5.0 * solo_time,
            "internal interference: solo {solo_time}, 8-way {max_time}"
        );
    }

    #[test]
    fn writers_on_distinct_osts_do_not_interfere() {
        let cfg = testbed();
        let bytes = 128 * MIB;
        let mut sys = StorageSystem::new(cfg.clone(), 4);
        for i in 0..4 {
            sys.submit_ost_write(SimTime::ZERO, OstId(i as usize), bytes, i);
        }
        let done = drain(&mut sys);
        let mut solo = StorageSystem::new(cfg, 4);
        solo.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let solo_done = drain(&mut solo);
        let solo_time = (solo_done[0].finished - solo_done[0].submitted).as_secs_f64();
        for c in done {
            let time = (c.finished - c.submitted).as_secs_f64();
            assert!(
                (time - solo_time).abs() < 0.05 * solo_time,
                "parallel targets should behave like solo: {time} vs {solo_time}"
            );
        }
    }

    #[test]
    fn open_and_close_complete() {
        let mut sys = StorageSystem::new(testbed(), 5);
        sys.submit_open(SimTime::ZERO, 10);
        sys.submit_close(t(1.0), 11);
        let done = drain(&mut sys);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].kind, CompletionKind::Open);
        assert_eq!(done[1].kind, CompletionKind::Close);
    }

    #[test]
    fn background_stream_slows_foreground() {
        let cfg = testbed();
        // Larger than the testbed cache so the foreground write shares the
        // disk lane with the background stream.
        let bytes = 128 * MIB;
        let mut quiet = StorageSystem::new(cfg.clone(), 6);
        quiet.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let qd = drain(&mut quiet);
        let q_time = (qd[0].finished - qd[0].submitted).as_secs_f64();

        let mut busy = StorageSystem::new(cfg, 6);
        busy.add_background_stream(SimTime::ZERO, OstId(0), 512 * MIB);
        busy.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let bd = drain(&mut busy);
        assert_eq!(bd.len(), 1, "background never surfaces completions");
        let b_time = (bd[0].finished - bd[0].submitted).as_secs_f64();
        assert!(
            b_time > 1.5 * q_time,
            "external interference: quiet {q_time}, busy {b_time}"
        );
    }

    #[test]
    fn background_stream_renews_itself() {
        let cfg = testbed();
        let mut sys = StorageSystem::new(cfg, 7);
        sys.add_background_stream(SimTime::ZERO, OstId(0), MIB);
        // Let many renewal cycles pass; the OST must still be busy.
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let next = sys.next_event_time().expect("background keeps events flowing");
            now = next;
            sys.advance_to(next);
        }
        assert!(sys.ost_streams(OstId(0)) >= 1);
        assert!(now > SimTime::ZERO);
    }

    #[test]
    fn bursty_stream_has_idle_gaps() {
        let cfg = testbed();
        let mut sys = StorageSystem::new(cfg, 8);
        // Bursts of 8 MiB with generous gaps.
        sys.add_bursty_stream(SimTime::ZERO, OstId(0), 8 * MIB, 1.0);
        let mut idle_seen = false;
        for _ in 0..40 {
            let Some(next) = sys.next_event_time() else {
                break;
            };
            sys.advance_to(next);
            if sys.ost_streams(OstId(0)) == 0 {
                idle_seen = true;
            }
        }
        assert!(idle_seen, "bursty stream must leave idle windows");
    }

    #[test]
    fn jobs_populate_and_churn_on_production_machines() {
        let mut sys = StorageSystem::new(jaguar(), 11);
        // Stationary initialisation plus churn over ten minutes.
        let mut seen_active = sys.active_job_count();
        let mut max_active = seen_active;
        let end = t(600.0);
        while let Some(next) = sys.next_event_time() {
            if next > end {
                break;
            }
            sys.advance_to(next);
            seen_active = sys.active_job_count();
            max_active = max_active.max(seen_active);
        }
        assert!(max_active >= 1, "competing jobs should appear within 10 min");
    }

    #[test]
    fn job_noise_slows_covered_osts_only() {
        // Construct a system and force a job manually via the arrival path:
        // run until an arrival fires, then check factors.
        let mut sys = StorageSystem::new(jaguar(), 13);
        let end = t(1200.0);
        while let Some(next) = sys.next_event_time() {
            if next > end {
                break;
            }
            sys.advance_to(next);
            if sys.active_job_count() > 0 {
                break;
            }
        }
        if sys.active_job_count() > 0 {
            let slowed = (0..672)
                .filter(|&i| sys.ost_noise(OstId(i)) < 0.99)
                .count();
            assert!(slowed > 0, "a job must slow some OSTs");
            assert!(slowed < 672, "but not the whole machine");
        }
    }

    #[test]
    fn noise_makes_identical_runs_vary_across_seeds() {
        let cfg = jaguar();
        let bytes = 128 * MIB;
        let mut times = Vec::new();
        for seed in 0..8 {
            let mut sys = StorageSystem::new(cfg.clone(), seed);
            sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
            let done = drain(&mut sys);
            times.push((done[0].finished - done[0].submitted).as_secs_f64());
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.02,
            "production noise should vary service times: {times:?}"
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed: u64| {
            let mut sys = StorageSystem::new(jaguar(), seed);
            for i in 0..16 {
                sys.submit_ost_write(SimTime::ZERO, OstId(i % 4), 32 * MIB, i as u64);
            }
            drain(&mut sys)
                .iter()
                .map(|c| (c.tag, c.finished.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn degraded_ost_slows_and_restores() {
        let cfg = testbed();
        let bytes = 128 * MIB;
        let time_of = |degrade: bool| {
            let mut sys = StorageSystem::new(cfg.clone(), 12);
            if degrade {
                sys.degrade_ost(SimTime::ZERO, OstId(0), 0.1);
            }
            sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
            let d = sys.run_until_quiet(t(1e6));
            (d[0].finished - d[0].submitted).as_secs_f64()
        };
        let healthy = time_of(false);
        let degraded = time_of(true);
        assert!(
            degraded > 5.0 * healthy,
            "degradation must bite: {healthy} vs {degraded}"
        );
        // Restore mid-flight speeds recovery.
        let mut sys = StorageSystem::new(cfg, 12);
        sys.degrade_ost(SimTime::ZERO, OstId(0), 0.1);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        sys.restore_ost(t(healthy), OstId(0));
        let d = sys.run_until_quiet(t(1e6));
        let partial = (d[0].finished - d[0].submitted).as_secs_f64();
        assert!(partial < degraded && partial > healthy);
    }

    #[test]
    fn run_until_quiet_respects_deadline() {
        let mut sys = StorageSystem::new(testbed(), 9);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 1024 * MIB, 0);
        let done = sys.run_until_quiet(t(0.001));
        assert!(done.is_empty(), "deadline too early for completion");
    }

    #[test]
    fn silent_corruption_logs_without_touching_the_timeline() {
        let workload = |script: Option<FaultScript>| {
            let mut sys = StorageSystem::new(testbed(), 13);
            if let Some(script) = script {
                sys.install_faults(&script);
            }
            sys.add_background_stream(SimTime::ZERO, OstId(1), 64 * MIB);
            for i in 0..6u64 {
                sys.submit_ost_write(
                    SimTime::ZERO + SimDuration::from_millis(i),
                    OstId((i % 2) as usize),
                    16 * MIB,
                    i,
                );
            }
            let done = sys.run_until_quiet(t(1e6));
            let oracle = sys.integrity_oracle();
            (done, oracle)
        };
        let (clean, clean_oracle) = workload(None);
        let script = FaultScript::none().silent_corruption(0.0, 0, None, 1.0);
        assert!(script.is_silent_only());
        let (dirty, oracle) = workload(Some(script));

        // The whole point of the isolated corruption stream: completions
        // (count, times, error flags) are byte-identical either way.
        assert_eq!(clean, dirty);
        assert!(clean_oracle.is_empty());

        // Rate 1.0 on OST 0 → exactly the three OST-0 writes are flagged,
        // keyed by their completion times; OST 1 is untouched.
        assert_eq!(oracle.corrupt_count(), 3);
        for c in dirty.iter().filter(|c| c.tag % 2 == 0) {
            assert!(oracle.write_corrupted(OstId(0), c.finished));
        }
        assert!(!oracle.corrupt.iter().any(|&(o, _)| o == OstId(1)));
        assert!(oracle.torn.is_empty() && oracle.dead.is_empty());
    }

    #[test]
    fn silent_corruption_window_expires() {
        let mut sys = StorageSystem::new(testbed(), 14);
        sys.install_faults(&FaultScript::none().silent_corruption(0.0, 0, Some(0.0001), 1.0));
        // Submitted after the window closes: completion is far past 0.1 ms.
        sys.submit_ost_write(t(1.0), OstId(0), 16 * MIB, 0);
        let done = sys.run_until_quiet(t(1e6));
        assert_eq!(done.len(), 1);
        assert!(sys.integrity_oracle().is_empty());
    }

    #[test]
    fn torn_write_aborts_foreground_and_restarts_background() {
        let mut sys = StorageSystem::new(testbed(), 15);
        sys.add_background_stream(SimTime::ZERO, OstId(0), 64 * MIB);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 512 * MIB, 7);
        sys.install_faults(&FaultScript::none().torn_write(0.5, 0));
        let done = sys.run_until_quiet(t(1e6));
        assert_eq!(done.len(), 1);
        assert!(done[0].error, "torn write surfaces as an error completion");
        assert!(
            (done[0].finished.as_secs_f64() - 0.5).abs() < 1e-9,
            "aborted at the tear instant"
        );
        let oracle = sys.integrity_oracle();
        assert_eq!(oracle.torn, vec![(OstId(0), t(0.5))]);
        assert!(oracle.dead.is_empty(), "target itself stays healthy");

        // The OST is still alive: a retry write completes cleanly, and the
        // restarted background stream keeps interfering (never surfaces).
        sys.submit_ost_write(t(1.0), OstId(0), 16 * MIB, 8);
        let retry = sys.run_until_quiet(t(1e6));
        assert_eq!(retry.len(), 1);
        assert!(!retry[0].error);
    }

    #[test]
    fn oracle_reports_failed_targets_as_dead() {
        let mut sys = StorageSystem::new(testbed(), 16);
        sys.install_faults(&FaultScript::none().fail_ost(
            0.0,
            2,
            FailMode::Error,
            None,
        ));
        sys.submit_ost_write(t(1.0), OstId(0), MIB, 0);
        let _ = sys.run_until_quiet(t(1e6));
        assert_eq!(sys.integrity_oracle().dead, vec![OstId(2)]);
    }

    #[test]
    fn completions_are_time_ordered() {
        let mut sys = StorageSystem::new(testbed(), 10);
        for i in 0..20u64 {
            sys.submit_ost_write(
                SimTime::ZERO + SimDuration::from_millis(i),
                OstId((i % 8) as usize),
                (i + 1) * MIB,
                i,
            );
        }
        let done = drain(&mut sys);
        assert_eq!(done.len(), 20);
        for w in done.windows(2) {
            assert!(w[0].finished <= w[1].finished);
        }
    }

    /// Every mutating entry point must invalidate the memoized
    /// `next_event_time`. The accessor cross-checks its cache against a
    /// fresh scan in debug builds, so probing after each mutation turns
    /// any missing invalidation into a panic here.
    #[test]
    fn next_event_time_cache_survives_every_mutating_entry_point() {
        let mut sys = StorageSystem::new(testbed(), 21);
        let f = sys.fs_mut().create("probe", StripeSpec::Pinned(vec![OstId(0), OstId(1)]));
        sys.next_event_time();
        sys.install_faults(&FaultScript::none().brownout(5.0, 3, 0.5, 1.0));
        sys.next_event_time();
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 4 * MIB, 0);
        assert!(sys.next_event_time().is_some(), "pending write must schedule a wake");
        sys.submit_file_write(SimTime::ZERO, f, 0, 4 * MIB, 1);
        sys.next_event_time();
        sys.submit_open(SimTime::ZERO, 2);
        sys.next_event_time();
        sys.submit_close(SimTime::ZERO, 3);
        sys.next_event_time();
        sys.degrade_ost(t(0.001), OstId(2), 0.5);
        sys.next_event_time();
        sys.restore_ost(t(0.002), OstId(2));
        sys.next_event_time();
        sys.add_background_stream(t(0.003), OstId(4), 8 * MIB);
        sys.next_event_time();
        sys.add_bursty_stream(t(0.004), OstId(5), 8 * MIB, 2.0);
        sys.next_event_time();
        let _ = sys.advance_to(t(0.01));
        sys.next_event_time();
        let mut out = Vec::new();
        let _ = sys.advance_until_completion(t(100.0), &mut out);
        sys.next_event_time();
        sys.set_shard_threads(2);
        sys.next_event_time();
        let _ = sys.run_until_quiet(t(1e6));
        sys.next_event_time();
        sys.reset(22);
        assert_eq!(
            sys.next_event_time(),
            sys.next_event_time(),
            "cached probe must be stable when nothing moves"
        );
    }

    /// The lookahead advance must stop at each completion instant in
    /// turn, returning exactly that instant.
    #[test]
    fn lookahead_stops_at_each_completion_instant() {
        let mut sys = StorageSystem::new(testbed(), 30);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 8 * MIB, 0);
        sys.submit_ost_write(SimTime::ZERO, OstId(1), 64 * MIB, 1);
        let mut out = Vec::new();
        let first = sys.advance_until_completion(t(1e6), &mut out);
        assert_eq!(out.len(), 1, "one completion per stop: {out:?}");
        assert_eq!(out[0].tag, 0);
        assert_eq!(first, Some(out[0].finished));
        let second = sys.advance_until_completion(t(1e6), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].tag, 1);
        assert_eq!(second, Some(out[1].finished));
    }

    /// A horizon before the first completion advances background state
    /// but delivers nothing.
    #[test]
    fn lookahead_respects_the_horizon() {
        let mut sys = StorageSystem::new(testbed(), 31);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), 256 * MIB, 0);
        let mut out = Vec::new();
        let r = sys.advance_until_completion(t(0.001), &mut out);
        assert!(out.is_empty(), "no completion inside 1 ms: {out:?}");
        if let Some(tm) = r {
            assert!(tm <= t(0.001));
        }
        let r = sys.advance_until_completion(t(1e6), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(r, Some(out[0].finished));
    }

    /// The tentpole differential: `advance_until_completion` must
    /// reproduce the stepwise `next_event_time`/`advance_into` driver
    /// byte-for-byte — completion stream, corruption/torn logs and final
    /// event time — across shard counts and under a fault script
    /// exercising brownout, error-mode failure with recovery, torn
    /// writes, silent corruption and an MDS outage, with background
    /// interference running throughout.
    #[test]
    fn lookahead_advance_matches_stepwise_advance_under_faults() {
        let script = FaultScript::none()
            .brownout(0.5, 1, 0.3, 2.0)
            .fail_ost(2.0, 2, FailMode::Error, Some(4.0))
            .torn_write(1.0, 3)
            .silent_corruption(0.0, 0, None, 0.5)
            .mds_outage(0.2, 0.3);
        let build = |threads: usize| {
            let mut sys = StorageSystem::new(testbed(), 77);
            sys.set_shard_threads(threads);
            sys.install_faults(&script);
            for i in 0..8 {
                sys.add_background_stream(SimTime::ZERO, OstId(i % 8), 32 * MIB);
            }
            sys.add_bursty_stream(SimTime::ZERO, OstId(2), 16 * MIB, 1.0);
            let mut tag = 0u64;
            for step in 0..6u64 {
                let now = SimTime::ZERO + SimDuration::from_millis(step * 700);
                for o in 0..8usize {
                    sys.submit_ost_write(now, OstId(o), (4 + step) * MIB, tag);
                    tag += 1;
                }
                sys.submit_open(now, tag);
                tag += 1;
                sys.submit_close(now, tag);
                tag += 1;
            }
            (sys, tag as usize)
        };
        let (mut reference, expected) = build(1);
        let serial = reference.run_until_quiet(t(1e6));
        assert_eq!(serial.len(), expected, "reference must resolve every op");
        let ref_oracle = reference.integrity_oracle();
        for threads in [1usize, 2, 4] {
            let (mut sys, _) = build(threads);
            let mut got: Vec<StorageCompletion> = Vec::new();
            let mut last = None;
            let mut stalled = 0;
            while got.len() < expected && stalled < 3 {
                let before = got.len();
                let r = sys.advance_until_completion(t(1e6), &mut got);
                if let Some(tm) = r {
                    last = Some(tm);
                }
                stalled = if got.len() == before { stalled + 1 } else { 0 };
            }
            assert_eq!(got, serial, "lookahead diverged at {threads} shard threads");
            assert_eq!(
                last,
                Some(serial.last().expect("nonempty").finished),
                "final event time diverged at {threads} shard threads"
            );
            let oracle = sys.integrity_oracle();
            assert_eq!(oracle.corrupt, ref_oracle.corrupt);
            assert_eq!(oracle.torn, ref_oracle.torn);
            assert_eq!(oracle.dead, ref_oracle.dead);
            assert_eq!(oracle.lost, ref_oracle.lost);
        }
    }
}
