//! File layout: striping of logical files across storage targets.
//!
//! Mirrors Lustre 1.6 semantics as the paper relies on them:
//!
//! * a file has a stripe size, a stripe count and an ordered list of OSTs;
//! * **stripe count is capped at 160 for a single file** (paper §I — the
//!   structural reason the MPI-IO baseline cannot exceed ~28 GB/s);
//! * OSTs are assigned round-robin from a moving allocation cursor (so
//!   files spread across the system), or pinned explicitly (the adaptive
//!   method pins one file per target).

/// Index of a storage target within a machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OstId(pub usize);

/// Handle to a created file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u32);

/// How a new file should be striped.
#[derive(Clone, Debug)]
pub enum StripeSpec {
    /// Use the file system's default stripe count, allocated round-robin.
    Default,
    /// Stripe over `count` targets (clamped to the per-file maximum),
    /// allocated round-robin.
    Count(usize),
    /// Pin the file to exactly these targets, in order (clamped to the
    /// per-file maximum). Used by the adaptive method (one file per OST)
    /// and by IOR file-per-process placement.
    Pinned(Vec<OstId>),
}

/// Metadata of one created file.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Path-like name (for diagnostics and the object store).
    pub name: String,
    /// Stripe width in bytes.
    pub stripe_size: u64,
    /// Targets, in stripe order.
    pub osts: Vec<OstId>,
    /// Current size (high-water mark of writes).
    pub size: u64,
    /// The stripe count originally requested (before clamping).
    pub requested_stripes: usize,
}

/// The striping/allocation layer of the simulated file system.
#[derive(Clone, Debug)]
pub struct FileSystem {
    ost_count: usize,
    max_stripe_count: usize,
    default_stripe_count: usize,
    default_stripe_size: u64,
    alloc_cursor: usize,
    files: Vec<FileMeta>,
}

impl FileSystem {
    /// Create an empty file system over `ost_count` targets.
    pub fn new(
        ost_count: usize,
        max_stripe_count: usize,
        default_stripe_count: usize,
        default_stripe_size: u64,
    ) -> Self {
        assert!(ost_count > 0 && default_stripe_count > 0 && default_stripe_size > 0);
        FileSystem {
            ost_count,
            max_stripe_count: max_stripe_count.min(ost_count),
            default_stripe_count: default_stripe_count.min(ost_count),
            default_stripe_size,
            alloc_cursor: 0,
            files: Vec::new(),
        }
    }

    /// Number of files created so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The per-file stripe-count limit (Lustre 1.6: 160).
    pub fn max_stripe_count(&self) -> usize {
        self.max_stripe_count
    }

    /// Create a file; returns its handle.
    pub fn create(&mut self, name: impl Into<String>, spec: StripeSpec) -> FileId {
        let (osts, requested) = match spec {
            StripeSpec::Default => (self.alloc_round_robin(self.default_stripe_count), self.default_stripe_count),
            StripeSpec::Count(c) => {
                let granted = c.min(self.max_stripe_count).max(1);
                (self.alloc_round_robin(granted), c)
            }
            StripeSpec::Pinned(list) => {
                assert!(!list.is_empty(), "pinned stripe list empty");
                let requested = list.len();
                let mut osts = list;
                for o in &osts {
                    assert!(o.0 < self.ost_count, "OST {o:?} out of range");
                }
                osts.truncate(self.max_stripe_count);
                (osts, requested)
            }
        };
        let id = FileId(self.files.len() as u32);
        self.files.push(FileMeta {
            name: name.into(),
            stripe_size: self.default_stripe_size,
            osts,
            size: 0,
            requested_stripes: requested,
        });
        id
    }

    fn alloc_round_robin(&mut self, count: usize) -> Vec<OstId> {
        let count = count.min(self.ost_count);
        let mut osts = Vec::with_capacity(count);
        for i in 0..count {
            osts.push(OstId((self.alloc_cursor + i) % self.ost_count));
        }
        self.alloc_cursor = (self.alloc_cursor + count) % self.ost_count;
        osts
    }

    /// Look up a file's metadata.
    pub fn meta(&self, id: FileId) -> &FileMeta {
        &self.files[id.0 as usize]
    }

    /// Override a file's stripe size (must happen before any data lands;
    /// Lustre fixes striping at create time, and so do we).
    pub fn set_stripe_size(&mut self, id: FileId, stripe_size: u64) {
        let meta = &mut self.files[id.0 as usize];
        assert_eq!(meta.size, 0, "cannot restripe a non-empty file");
        assert!(stripe_size > 0);
        meta.stripe_size = stripe_size;
    }

    /// Map a contiguous byte range of a file onto per-OST byte counts,
    /// aggregated per target and sorted by OST id (deterministic).
    ///
    /// Also bumps the file's size high-water mark (ranges model writes; for
    /// reads the bump is a harmless no-op because reads land within the
    /// existing size in all our workloads).
    pub fn map_range(&mut self, id: FileId, offset: u64, len: u64) -> Vec<(OstId, u64)> {
        let mut counts = Vec::new();
        let mut out = Vec::new();
        self.map_range_into(id, offset, len, &mut counts, &mut out);
        out
    }

    /// Non-allocating [`FileSystem::map_range`]: writes the chunks into
    /// `out` (cleared first) using `counts` as per-stripe scratch, so the
    /// per-write hot path of a sweep reuses the caller's buffers.
    pub fn map_range_into(
        &mut self,
        id: FileId,
        offset: u64,
        len: u64,
        counts: &mut Vec<u64>,
        out: &mut Vec<(OstId, u64)>,
    ) {
        let meta = &mut self.files[id.0 as usize];
        meta.size = meta.size.max(offset + len);
        map_stripes_into(meta.stripe_size, &meta.osts, offset, len, counts, out);
    }

    /// Zero every file's size high-water mark, keeping the file table,
    /// stripe assignments and allocation cursor intact. A sweep replays an
    /// identical per-seed workload against identical files, so reusing the
    /// table (names, `FileId`s, placements) skips the per-seed create path
    /// entirely.
    pub fn reset_sizes(&mut self) {
        for f in &mut self.files {
            f.size = 0;
        }
    }
}

/// Pure striping arithmetic: how many bytes of `[offset, offset+len)` land
/// on each OST of a `stripe_size`-striped file.
pub fn map_stripes(stripe_size: u64, osts: &[OstId], offset: u64, len: u64) -> Vec<(OstId, u64)> {
    let mut counts = Vec::new();
    let mut out = Vec::new();
    map_stripes_into(stripe_size, osts, offset, len, &mut counts, &mut out);
    out
}

/// Buffer-reusing form of [`map_stripes`]: `counts` is per-stripe-slot
/// scratch, `out` receives the `(ost, bytes)` chunks (cleared first).
pub fn map_stripes_into(
    stripe_size: u64,
    osts: &[OstId],
    offset: u64,
    len: u64,
    counts: &mut Vec<u64>,
    out: &mut Vec<(OstId, u64)>,
) {
    assert!(!osts.is_empty());
    out.clear();
    if len == 0 {
        return;
    }
    let n = osts.len() as u64;
    counts.clear();
    counts.resize(osts.len(), 0);
    // Walk stripe-aligned pieces. For large ranges this is
    // O(len/stripe_size); ranges in the simulator are at most a few GiB
    // with MiB stripes, i.e. a few thousand iterations.
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let stripe_idx = pos / stripe_size;
        let within = pos % stripe_size;
        let take = (stripe_size - within).min(end - pos);
        let ost_slot = (stripe_idx % n) as usize;
        counts[ost_slot] += take;
        pos += take;
    }
    out.extend(
        osts.iter()
            .zip(counts.iter())
            .filter(|&(_, &b)| b > 0)
            .map(|(&o, &b)| (o, b)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;

    fn fs() -> FileSystem {
        FileSystem::new(16, 8, 4, MIB)
    }

    #[test]
    fn default_striping_uses_default_count() {
        let mut f = fs();
        let id = f.create("a", StripeSpec::Default);
        assert_eq!(f.meta(id).osts.len(), 4);
    }

    #[test]
    fn stripe_count_is_clamped_to_max() {
        let mut f = fs(); // max stripe 8
        let id = f.create("big", StripeSpec::Count(160));
        assert_eq!(f.meta(id).osts.len(), 8, "Lustre clamps to the limit");
        assert_eq!(f.meta(id).requested_stripes, 160);
    }

    #[test]
    fn round_robin_allocation_moves_cursor() {
        let mut f = fs();
        let a = f.create("a", StripeSpec::Count(4));
        let b = f.create("b", StripeSpec::Count(4));
        assert_eq!(f.meta(a).osts, vec![OstId(0), OstId(1), OstId(2), OstId(3)]);
        assert_eq!(f.meta(b).osts, vec![OstId(4), OstId(5), OstId(6), OstId(7)]);
    }

    #[test]
    fn allocation_wraps_around() {
        let mut f = FileSystem::new(4, 4, 2, MIB);
        f.create("a", StripeSpec::Count(3));
        let b = f.create("b", StripeSpec::Count(3));
        assert_eq!(f.meta(b).osts, vec![OstId(3), OstId(0), OstId(1)]);
    }

    #[test]
    fn pinned_placement_is_respected() {
        let mut f = fs();
        let id = f.create("pin", StripeSpec::Pinned(vec![OstId(7)]));
        assert_eq!(f.meta(id).osts, vec![OstId(7)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pinned_out_of_range_panics() {
        let mut f = fs();
        f.create("bad", StripeSpec::Pinned(vec![OstId(99)]));
    }

    #[test]
    fn map_range_single_stripe() {
        let mut f = fs();
        let id = f.create("x", StripeSpec::Pinned(vec![OstId(3)]));
        let m = f.map_range(id, 0, 10 * MIB);
        assert_eq!(m, vec![(OstId(3), 10 * MIB)]);
    }

    #[test]
    fn map_range_distributes_evenly_when_aligned() {
        let mut f = fs();
        let id = f.create("x", StripeSpec::Count(4));
        let m = f.map_range(id, 0, 8 * MIB); // 8 stripes over 4 OSTs
        assert_eq!(m.len(), 4);
        for &(_, b) in &m {
            assert_eq!(b, 2 * MIB);
        }
    }

    #[test]
    fn map_range_handles_unaligned_offsets() {
        let osts = vec![OstId(0), OstId(1)];
        // 1 MiB stripes; range [512 KiB, 1.5 MiB) = 512 KiB on stripe 0
        // (OST 0) + 512 KiB on stripe 1 (OST 1).
        let m = map_stripes(MIB, &osts, MIB / 2, MIB);
        assert_eq!(m, vec![(OstId(0), MIB / 2), (OstId(1), MIB / 2)]);
    }

    #[test]
    fn map_range_total_bytes_conserved() {
        let osts: Vec<OstId> = (0..7).map(OstId).collect();
        for (off, len) in [(0u64, 13 * MIB + 7), (MIB * 3 + 123, 29 * MIB + 1), (5, 1)] {
            let m = map_stripes(MIB, &osts, off, len);
            let total: u64 = m.iter().map(|&(_, b)| b).sum();
            assert_eq!(total, len, "off {off} len {len}");
        }
    }

    #[test]
    fn map_range_empty_for_zero_len() {
        let m = map_stripes(MIB, &[OstId(0)], 10, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn size_high_water_mark_grows() {
        let mut f = fs();
        let id = f.create("x", StripeSpec::Default);
        f.map_range(id, 0, MIB);
        assert_eq!(f.meta(id).size, MIB);
        f.map_range(id, 10 * MIB, MIB);
        assert_eq!(f.meta(id).size, 11 * MIB);
        f.map_range(id, 0, MIB); // rewrite below high-water mark
        assert_eq!(f.meta(id).size, 11 * MIB);
    }

    #[test]
    fn map_range_into_matches_allocating_form() {
        let mut f = fs();
        let id = f.create("x", StripeSpec::Count(4));
        let mut counts = Vec::new();
        let mut out = Vec::new();
        for (off, len) in [(0u64, 8 * MIB), (MIB / 2, MIB), (3 * MIB + 7, 11 * MIB), (5, 0)] {
            let mut g = f.clone();
            let expect = g.map_range(id, off, len);
            f.map_range_into(id, off, len, &mut counts, &mut out);
            assert_eq!(out, expect, "off {off} len {len}");
        }
    }

    #[test]
    fn reset_sizes_keeps_layout_and_zeroes_sizes() {
        let mut f = fs();
        let a = f.create("a", StripeSpec::Count(4));
        let b = f.create("b", StripeSpec::Pinned(vec![OstId(7)]));
        f.map_range(a, 0, 10 * MIB);
        f.map_range(b, 0, MIB);
        let osts_a = f.meta(a).osts.clone();
        f.reset_sizes();
        assert_eq!(f.file_count(), 2, "file table survives");
        assert_eq!(f.meta(a).size, 0);
        assert_eq!(f.meta(b).size, 0);
        assert_eq!(f.meta(a).osts, osts_a, "placements survive");
        // The allocation cursor is untouched: the next create continues
        // the round-robin exactly where it left off.
        let c = f.create("c", StripeSpec::Count(4));
        assert_eq!(f.meta(c).osts[0], OstId(4));
    }

    #[test]
    fn stripe_walk_is_round_robin() {
        let osts = vec![OstId(5), OstId(9), OstId(2)];
        let m = map_stripes(MIB, &osts, 0, 3 * MIB);
        // Preserves the file's OST order, sorted output only by position in
        // the stripe list.
        assert_eq!(m, vec![(OstId(5), MIB), (OstId(9), MIB), (OstId(2), MIB)]);
    }
}
