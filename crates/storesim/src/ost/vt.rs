//! The virtual-time OST engine: O(log W) storage events.
//!
//! ## Formulation (DESIGN.md §10)
//!
//! Between external state changes (submit, harvest, noise flip, freeze,
//! fail) every stream in a lane progresses at the *same* per-stream rate
//! `r(t)` — and crucially, overhead-phase streams already count toward
//! the lane populations (counts move at submit/harvest, not at overhead
//! expiry), so `r(t)` is piecewise-constant with breakpoints only at
//! external events. That makes the classic virtual-time trick exact
//! rather than approximate:
//!
//! * Each lane keeps a **virtual clock** `V` with `dV/dt = r(t)` (zero
//!   while frozen). `V` is measured in bytes-per-stream served.
//! * A stream that enters byte phase at wall time `s` with `b` bytes gets
//!   a **finish tag** `V(s) + b` and completes exactly when `V` reaches
//!   its tag. Tags never change — a rate change bends `V`'s slope for
//!   every stream at once, so noise/freeze/fail touch only the lane
//!   clocks and never re-key the heap (no per-stream cancellation, which
//!   is why a plain deterministic min-heap suffices here where
//!   `simcore::queue` needs generation tokens).
//! * The fixed request overhead burns in *wall* time, not lane-rate time,
//!   so it lives on a separate **progress clock** `P` with `dP/dt = 1`
//!   while unfrozen; a submitted stream waits in an overhead min-heap
//!   keyed by `P(submit) + overhead` and receives its finish tag when the
//!   expiry is retired during `settle`.
//!
//! `settle` is O(1) + O(log W) per retired overhead expiry;
//! `next_completion` is O(1) (peek two tag heaps and the earliest
//! overhead expiry); `advance` is O(k log W) for k completions. A wake at
//! an overhead expiry may harvest nothing — the owning `StorageSystem`
//! re-plans after every wake, so spurious wakes cost one event and keep
//! completion *times* exact: each request takes at most two wakes.
//!
//! Float drift: `V` accumulates `rate × dt` products in a different
//! association than the reference engine's per-stream `remaining`, so
//! completion instants can differ at the ~1e-12 s level (differential
//! tests allow 1 ns). `V` rebases to zero whenever its lane's tag heap
//! empties, bounding the magnitude (and therefore the absolute error) by
//! the length of one lane busy period.

use simcore::SimTime;

use crate::params::OstParams;

use super::{per_stream_rate, wake_delay, Lane, OpKind, OstCompletion, RequestId, BG_BIT, DONE_EPS};

/// A stream in byte phase, keyed by its virtual finish tag.
#[derive(Clone, Debug)]
struct TaggedStream {
    /// `pack(tag, seq)` — the finish tag and its deterministic sequence
    /// tie-break, pre-packed so heap sifts compare one cached u128
    /// instead of re-packing per probe.
    key: u128,
    id: RequestId,
    bytes: u64,
    submitted: SimTime,
}

impl TaggedStream {
    /// Lane-clock value at which the last byte lands.
    fn tag(&self) -> f64 {
        f64::from_bits((self.key >> 64) as u64)
    }
}

/// A stream still burning its fixed request overhead.
#[derive(Clone, Debug)]
struct PendingStream {
    /// `pack(expiry, seq)`: the progress-clock instant the overhead
    /// burns off, plus the submission-sequence tie-break.
    key: u128,
    lane: Lane,
    id: RequestId,
    bytes: u64,
    submitted: SimTime,
}

impl PendingStream {
    /// Progress-clock instant the overhead burns off.
    fn expiry(&self) -> f64 {
        f64::from_bits((self.key >> 64) as u64)
    }

    /// Submission sequence number (carried into the byte phase).
    fn seq(&self) -> u64 {
        self.key as u64
    }
}

/// Pack a non-negative finite f64 key and a sequence number into one
/// totally-ordered u128 (IEEE 754 bit patterns of non-negative floats
/// order like the floats themselves; `f64::from_bits` of the high half
/// recovers the key exactly).
fn pack(key: f64, seq: u64) -> u128 {
    debug_assert!(key >= 0.0, "heap key {key} must be non-negative");
    ((key.to_bits() as u128) << 64) | seq as u128
}

trait Keyed {
    fn key(&self) -> u128;
}

impl Keyed for TaggedStream {
    fn key(&self) -> u128 {
        self.key
    }
}

impl Keyed for PendingStream {
    fn key(&self) -> u128 {
        self.key
    }
}

/// A deterministic min-heap (same shape as `simcore::queue`'s slab heap,
/// minus the cancellation machinery — tags are immutable, so nothing is
/// ever removed except at the top or wholesale).
///
/// ## Small-width fast path
///
/// Up to [`MinHeap::SMALL_MAX`] elements the items stay an *unsorted*
/// vector: `push` is a plain append and `pop`/`peek` do a linear min
/// scan over the cached `u128` keys (a handful of compares, no swaps,
/// no branchy sift loops). Small writer counts — the W ≤ 16 drains where
/// the 4-ary sift overhead used to lose to the reference engine — never
/// leave this mode. Crossing the threshold heapifies once (O(n)) and the
/// structure stays in 4-ary heap order until it drains empty. Selection
/// is identical in both modes because keys are unique (the sequence
/// tie-break), so the engine's completion order never depends on which
/// mode served a pop.
#[derive(Clone, Debug)]
struct MinHeap<T: Keyed> {
    items: Vec<T>,
    /// True while `items` is maintained in 4-ary heap order; false in
    /// small mode (unsorted, linear min scans).
    heapified: bool,
}

impl<T: Keyed> MinHeap<T> {
    const ARITY: usize = 4;
    /// Largest population served by the unsorted linear-scan mode.
    const SMALL_MAX: usize = 16;

    fn with_capacity(cap: usize) -> Self {
        MinHeap {
            items: Vec::with_capacity(cap),
            heapified: false,
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Index of the minimum-key element in small mode.
    fn min_index(&self) -> Option<usize> {
        let mut it = self.items.iter().enumerate();
        let (mut best, first) = it.next()?;
        let mut best_key = first.key();
        for (i, item) in it {
            let k = item.key();
            if k < best_key {
                best = i;
                best_key = k;
            }
        }
        Some(best)
    }

    fn peek(&self) -> Option<&T> {
        if self.heapified {
            self.items.first()
        } else {
            self.min_index().map(|i| &self.items[i])
        }
    }

    fn items(&self) -> &[T] {
        &self.items
    }

    fn clear(&mut self) {
        self.items.clear();
        self.heapified = false;
    }

    fn push(&mut self, item: T) {
        self.items.push(item);
        if !self.heapified {
            if self.items.len() <= Self::SMALL_MAX {
                return;
            }
            // Crossed the threshold: Floyd heapify once and stay a heap
            // until the population drains away.
            self.heapified = true;
            let n = self.items.len();
            for i in (0..=(n - 2) / Self::ARITY).rev() {
                self.sift_down(i);
            }
            return;
        }
        self.sift_up(self.items.len() - 1);
    }

    fn pop(&mut self) -> Option<T> {
        if !self.heapified {
            let i = self.min_index()?;
            return Some(self.items.swap_remove(i));
        }
        debug_assert!(!self.items.is_empty(), "heap mode implies occupancy");
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        if self.items.is_empty() {
            self.heapified = false;
        } else {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.items[i].key() < self.items[parent].key() {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = i * Self::ARITY + 1;
            if first >= self.items.len() {
                break;
            }
            let mut best = first;
            let mut best_key = self.items[first].key();
            let end = (first + Self::ARITY).min(self.items.len());
            for c in first + 1..end {
                let k = self.items[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key < self.items[i].key() {
                self.items.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }
}

/// One lane's incremental state: the virtual clock plus the tag heap.
#[derive(Clone, Debug)]
struct LaneState {
    /// Virtual clock: integral of the per-stream byte rate over unfrozen
    /// wall time, in bytes. Rebased to zero when the tag heap empties.
    clock: f64,
    /// Byte-phase streams ordered by virtual finish tag.
    heap: MinHeap<TaggedStream>,
}

impl LaneState {
    fn new() -> Self {
        LaneState {
            clock: 0.0,
            // Pre-sized past the small-mode threshold: per-target stream
            // populations are workload- and seed-dependent, and a sweep's
            // steady-state seeds must not grow the heap past its warmup
            // high-water mark (the fleet zero-allocation contract).
            heap: MinHeap::with_capacity(2 * MinHeap::<TaggedStream>::SMALL_MAX),
        }
    }
}

/// One simulated storage target (virtual-time engine, the default).
///
/// Drop-in replacement for [`super::reference::RefOst`]: identical public
/// API and — pinned by `tests/vt_differential.rs` — identical completion
/// sets, ordering and times (within 1 ns) on any schedule. Only the
/// *wake* schedule differs: `next_completion` may return an overhead
/// expiry whose `advance` harvests nothing.
#[derive(Clone, Debug)]
pub struct VtOst {
    params: OstParams,
    /// Current external slowdown factor in (0, 1].
    noise_factor: f64,
    /// Frozen targets make zero progress (stall-mode failure injection).
    frozen: bool,
    /// Bytes of cache space reserved (admission control): landed bytes
    /// plus bytes still in flight on cache-lane streams.
    cache_reserved: f64,
    /// Bytes that have fully landed in the cache and are eligible to drain
    /// to disk.
    cache_landed: f64,
    last_settle: SimTime,
    n_disk: usize,
    n_cache: usize,
    /// Progress clock: unfrozen wall seconds since creation (overhead
    /// phases burn against this, so freezes pause them for free).
    progress: f64,
    /// Cached per-stream disk-lane rate — the contention curve behind it
    /// costs a `powf`, and the populations/noise it depends on only move
    /// at submit/harvest/fail/set_noise, far less often than settles.
    disk_rate: f64,
    /// Cached per-stream cache-lane rate (same invalidation points).
    cache_rate: f64,
    /// Memoized `params.disk_eff(n)` by stream count — the contention
    /// curve is a pure function of `n` for fixed params, and its `powf`
    /// would otherwise dominate the per-event cost of a drain (where the
    /// population changes at every single wake).
    disk_eff_memo: Vec<f64>,
    disk: LaneState,
    cache: LaneState,
    /// Streams still burning their request overhead, keyed by expiry on
    /// the progress clock.
    pending: MinHeap<PendingStream>,
    /// Monotone submission counter (deterministic heap tie-breaks).
    seq: u64,
}

impl VtOst {
    /// Create an idle OST.
    pub fn new(params: OstParams) -> Self {
        let mut ost = VtOst {
            params,
            noise_factor: 1.0,
            frozen: false,
            cache_reserved: 0.0,
            cache_landed: 0.0,
            last_settle: SimTime::ZERO,
            n_disk: 0,
            n_cache: 0,
            progress: 0.0,
            disk_rate: 0.0,
            cache_rate: 0.0,
            disk_eff_memo: Vec::new(),
            disk: LaneState::new(),
            cache: LaneState::new(),
            pending: MinHeap::with_capacity(2 * MinHeap::<PendingStream>::SMALL_MAX),
            seq: 0,
        };
        ost.refresh_rates();
        ost
    }

    /// Return the target to its freshly-constructed state, keeping heap
    /// capacity and the `disk_eff` memo (a pure function of the retained
    /// params) so a sweep can reuse one OST per seed without allocating.
    pub fn reset(&mut self) {
        self.noise_factor = 1.0;
        self.frozen = false;
        self.cache_reserved = 0.0;
        self.cache_landed = 0.0;
        self.last_settle = SimTime::ZERO;
        self.n_disk = 0;
        self.n_cache = 0;
        self.progress = 0.0;
        self.disk.clock = 0.0;
        self.disk.heap.clear();
        self.cache.clock = 0.0;
        self.cache.heap.clear();
        self.pending.clear();
        self.seq = 0;
        self.refresh_rates();
    }

    /// Number of in-flight streams.
    pub fn active_streams(&self) -> usize {
        self.pending.len() + self.disk.heap.len() + self.cache.heap.len()
    }

    /// Number of in-flight disk-lane streams (overhead phase included).
    pub fn disk_streams(&self) -> usize {
        self.n_disk
    }

    /// Bytes of cache space currently reserved (landed + in flight).
    pub fn cache_used(&self) -> u64 {
        self.cache_reserved as u64
    }

    /// Current external-noise slowdown factor.
    pub fn noise_factor(&self) -> f64 {
        self.noise_factor
    }

    /// Recompute the cached lane rates. Must be called after anything that
    /// moves `n_disk`, `n_cache` or `noise_factor`. Mirrors
    /// [`per_stream_rate`] exactly (same operations, same association),
    /// going through the `disk_eff` memo instead of re-running its `powf`.
    fn refresh_rates(&mut self) {
        while self.disk_eff_memo.len() <= self.n_disk {
            let eff = self.params.disk_eff(self.disk_eff_memo.len());
            self.disk_eff_memo.push(eff);
        }
        let cap = self.params.stream_cap * self.noise_factor;
        let disk_eff = self.disk_eff_memo[self.n_disk] * self.noise_factor;
        self.disk_rate = (disk_eff / self.n_disk.max(1) as f64).min(cap);
        let cache_eff = self.params.ingest_eff(self.n_cache) * self.noise_factor;
        self.cache_rate = (cache_eff / self.n_cache.max(1) as f64).min(cap);
        debug_assert_eq!(
            self.disk_rate,
            per_stream_rate(&self.params, Lane::Disk, self.n_disk, self.n_cache, self.noise_factor)
        );
        debug_assert_eq!(
            self.cache_rate,
            per_stream_rate(&self.params, Lane::Cache, self.n_disk, self.n_cache, self.noise_factor)
        );
    }

    /// Advance the lane clocks (and cache drain) from `last_settle` to
    /// `now`, retiring overhead expiries that fall inside the interval.
    ///
    /// The per-stream rates are constant across the whole interval even
    /// though expiries are retired mid-way: lane populations already
    /// count overhead-phase streams, so retiring one changes no rate.
    fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_settle);
        if self.frozen {
            // A stalled target makes no progress at all (overhead, bytes,
            // cache drain); time simply passes it by.
            self.last_settle = now;
            return;
        }
        let dt = (now - self.last_settle).as_secs_f64();
        if dt > 0.0 {
            let target = self.progress + dt;
            let disk_rate = self.disk_rate;
            let cache_rate = self.cache_rate;
            // Wake instants quantize to whole nanoseconds, so a wake aimed
            // at an expiry can land up to half a tick short of it. Retire
            // anything within one tick of the target (clamping its clock
            // step to the interval): leaving it pending would make
            // `next_completion` report a sub-tick delay that rounds to a
            // zero-length wake, re-planning the same instant forever.
            const PENDING_SLACK: f64 = 1e-9;
            while let Some(p) = self.pending.peek() {
                if p.expiry() > target + PENDING_SLACK {
                    break;
                }
                let p = self.pending.pop().expect("peeked entry exists");
                let step = (p.expiry() - self.progress)
                    .min(target - self.progress)
                    .max(0.0);
                if step > 0.0 {
                    self.disk.clock += disk_rate * step;
                    self.cache.clock += cache_rate * step;
                    self.progress += step;
                }
                // The stream enters byte phase: its finish tag is fixed
                // here and never touched again.
                let lane = match p.lane {
                    Lane::Disk => &mut self.disk,
                    Lane::Cache => &mut self.cache,
                };
                lane.heap.push(TaggedStream {
                    key: pack(lane.clock + p.bytes as f64, p.seq()),
                    id: p.id,
                    bytes: p.bytes,
                    submitted: p.submitted,
                });
            }
            let step = target - self.progress;
            if step > 0.0 {
                self.disk.clock += disk_rate * step;
                self.cache.clock += cache_rate * step;
            }
            self.progress = target;
            if self.pending.is_empty() {
                // Rebase: overhead expiries are the only state keyed on the
                // progress clock, and each lives at most one overhead period.
                // Resetting whenever none are pending keeps the clock's f64
                // magnitude tiny, so wake-sized `dt` increments never fall
                // below its ULP (they would after a clamped far-future wake
                // pushed it to ~1e9 s).
                self.progress = 0.0;
            }
            // Cache drains to disk only while the disk lane is idle (an
            // approximation: the platters favour foreground traffic), and
            // only bytes that have fully landed are drainable.
            if self.n_disk == 0 && self.cache_landed > 0.0 {
                let drained =
                    (self.params.cache_drain * self.noise_factor * dt).min(self.cache_landed);
                self.cache_landed -= drained;
                self.cache_reserved = (self.cache_reserved - drained).max(0.0);
            }
        }
        self.last_settle = now;
    }

    /// Admit a request. Returns the lane decision implicitly via internal
    /// state; completions surface later through [`VtOst::advance`].
    pub fn submit(&mut self, now: SimTime, id: RequestId, bytes: u64, kind: OpKind) {
        self.settle(now);
        let cache_free = self.params.cache_capacity as f64 - self.cache_reserved;
        let lane = match kind {
            // Only requests up to the write-through threshold are cache
            // eligible (Fig. 1: 1-8 MB series ride the cache, 64 MB+ are
            // disk-bound from the start).
            OpKind::Write
                if bytes <= self.params.cache_max_request && (bytes as f64) <= cache_free =>
            {
                Lane::Cache
            }
            OpKind::Write | OpKind::WriteDirect => Lane::Disk,
            OpKind::Read => Lane::Disk,
        };
        match lane {
            Lane::Cache => {
                // Reserve cache space immediately so concurrent bursts see
                // the shrinking headroom. The lane count moves *now*, in
                // overhead phase — the invariant the virtual clocks rest on.
                self.cache_reserved += bytes as f64;
                self.n_cache += 1;
            }
            Lane::Disk => self.n_disk += 1,
        }
        self.refresh_rates();
        let seq = self.seq;
        self.seq += 1;
        let overhead = self.params.request_overhead;
        if overhead > 0.0 {
            self.pending.push(PendingStream {
                key: pack(self.progress + overhead, seq),
                lane,
                id,
                bytes,
                submitted: now,
            });
        } else {
            // No overhead phase: straight to byte phase.
            let lane = match lane {
                Lane::Disk => &mut self.disk,
                Lane::Cache => &mut self.cache,
            };
            lane.heap.push(TaggedStream {
                key: pack(lane.clock + bytes as f64, seq),
                id,
                bytes,
                submitted: now,
            });
        }
    }

    /// Move time forward to `now`, appending every request finished by
    /// then to `done` (the owner's reusable scratch buffer — the hot loop
    /// allocates nothing).
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<OstCompletion>) {
        self.settle(now);
        let start = done.len();
        while let Some(top) = self.disk.heap.peek() {
            if top.tag() > self.disk.clock + DONE_EPS {
                break;
            }
            let s = self.disk.heap.pop().expect("peeked entry exists");
            self.n_disk -= 1;
            done.push(OstCompletion {
                id: s.id,
                submitted: s.submitted,
                bytes: s.bytes,
            });
        }
        if self.disk.heap.is_empty() {
            // Rebase: no tag references the clock any more (pending
            // streams get theirs later, relative to whatever the clock is
            // then), so reset it to keep f64 magnitudes — and hence
            // absolute drift — bounded by one busy period.
            self.disk.clock = 0.0;
        }
        while let Some(top) = self.cache.heap.peek() {
            if top.tag() > self.cache.clock + DONE_EPS {
                break;
            }
            let s = self.cache.heap.pop().expect("peeked entry exists");
            self.n_cache -= 1;
            self.cache_landed += s.bytes as f64;
            done.push(OstCompletion {
                id: s.id,
                submitted: s.submitted,
                bytes: s.bytes,
            });
        }
        if self.cache.heap.is_empty() {
            self.cache.clock = 0.0;
        }
        // Deterministic completion ordering; 0/1-entry harvests (the
        // common case) skip the sort entirely.
        if done.len() > start {
            self.refresh_rates();
            if done.len() - start >= 2 {
                done[start..].sort_by_key(|c| c.id);
            }
        }
    }

    /// Move time forward to `now` and return every request that has
    /// finished by then (allocating convenience wrapper over
    /// [`VtOst::advance_into`]).
    pub fn advance(&mut self, now: SimTime) -> Vec<OstCompletion> {
        let mut done = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// Update the external-noise factor (settling progress first). Tags
    /// are invariant under rate changes — only the lane clocks' slopes
    /// bend — so this is O(1).
    pub fn set_noise(&mut self, now: SimTime, factor: f64) {
        debug_assert!(factor > 0.0 && factor <= 1.0, "noise factor {factor}");
        self.settle(now);
        self.noise_factor = factor;
        self.refresh_rates();
    }

    /// Freeze the target (stall-mode failure): in-flight and future
    /// streams are held with zero progress until [`VtOst::unfreeze`].
    /// O(1): both clocks simply stop.
    pub fn freeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = true;
    }

    /// Thaw a frozen target; held streams resume from where they stopped.
    pub fn unfreeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = false;
    }

    /// Whether the target is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Error-mode failure: abort every in-flight stream, returning their
    /// request ids (sorted) so the owner can surface error completions.
    /// Cache state is wiped (the disk is gone; recovery brings back an
    /// empty target).
    pub fn fail_all(&mut self, now: SimTime) -> Vec<RequestId> {
        self.settle(now);
        let mut ids: Vec<RequestId> = self
            .pending
            .items()
            .iter()
            .map(|p| p.id)
            .chain(self.disk.heap.items().iter().map(|s| s.id))
            .chain(self.cache.heap.items().iter().map(|s| s.id))
            .collect();
        ids.sort_unstable();
        self.pending.clear();
        self.disk.heap.clear();
        self.disk.clock = 0.0;
        self.cache.heap.clear();
        self.cache.clock = 0.0;
        self.n_disk = 0;
        self.n_cache = 0;
        self.cache_reserved = 0.0;
        self.cache_landed = 0.0;
        self.refresh_rates();
        ids
    }

    /// Predict the absolute time of the next wake: the earliest of the
    /// two lanes' head-of-heap completions and the earliest overhead
    /// expiry (whose wake may harvest nothing — the owner re-plans).
    /// `None` if idle or frozen. O(1).
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.frozen {
            return None;
        }
        let mut best = f64::INFINITY;
        if let Some(p) = self.pending.peek() {
            best = (p.expiry() - self.progress).max(0.0);
        }
        if let Some(s) = self.disk.heap.peek() {
            best = best.min((s.tag() - self.disk.clock).max(0.0) / self.disk_rate);
        }
        if let Some(s) = self.cache.heap.peek() {
            best = best.min((s.tag() - self.cache.clock).max(0.0) / self.cache_rate);
        }
        if best == f64::INFINITY {
            return None;
        }
        Some(self.last_settle.saturating_add(wake_delay(best)))
    }

    /// A conservative **lower bound** on the instant the next *foreground*
    /// stream (background interference carries the high id bit and is
    /// skipped) can possibly complete, assuming the most favourable
    /// future: zero contention, noise factor 1, nothing else competing.
    /// The lookahead driver drains lane-local events up to (just short
    /// of) the minimum of these bounds, knowing no foreground completion
    /// can surface strictly inside the drained window. `None` when no
    /// foreground stream is in flight or the target is frozen (a frozen
    /// target can only thaw at a global event, i.e. at a window
    /// boundary, so it constrains nothing within one).
    ///
    /// Soundness: overhead burns in wall time (rate exactly 1, never
    /// faster), and a byte-phase stream's per-stream rate never exceeds
    /// `min(lane_peak, stream_cap)` — `disk_eff`/`ingest_eff` never
    /// exceed their peaks and the noise factor is ≤ 1 — so remaining
    /// service time is at least `overhead_left + (remaining - DONE_EPS)
    /// / rate_max` (`DONE_EPS` because a stream counts as finished that
    /// many bytes early). O(W): scans every in-flight stream.
    pub fn fg_completion_bound(&self) -> Option<SimTime> {
        if self.frozen {
            return None;
        }
        let disk_max = self.params.disk_peak.min(self.params.stream_cap);
        let cache_max = self.params.cache_ingest_peak.min(self.params.stream_cap);
        let mut best = f64::INFINITY;
        for s in self.disk.heap.items() {
            if s.id.0 & BG_BIT == 0 {
                best = best.min((s.tag() - self.disk.clock - DONE_EPS).max(0.0) / disk_max);
            }
        }
        for s in self.cache.heap.items() {
            if s.id.0 & BG_BIT == 0 {
                best = best.min((s.tag() - self.cache.clock - DONE_EPS).max(0.0) / cache_max);
            }
        }
        for p in self.pending.items() {
            if p.id.0 & BG_BIT == 0 {
                let max = match p.lane {
                    Lane::Disk => disk_max,
                    Lane::Cache => cache_max,
                };
                best = best.min(
                    (p.expiry() - self.progress).max(0.0)
                        + (p.bytes as f64 - DONE_EPS).max(0.0) / max,
                );
            }
        }
        if best == f64::INFINITY {
            return None;
        }
        Some(self.last_settle.saturating_add(wake_delay(best)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::testbed;
    use simcore::units::MIB;

    // The behavioural suite runs against this engine from `super::super`
    // (ost.rs instantiates it for both engines); here live the tests of
    // the virtual-time mechanics themselves.

    #[test]
    fn min_heap_pops_in_key_order() {
        let mut h: MinHeap<TaggedStream> = MinHeap::with_capacity(0);
        let mut keys: Vec<u64> = (0..100).map(|i| (i * 7919) % 101).collect();
        for (i, &k) in keys.iter().enumerate() {
            h.push(TaggedStream {
                key: pack(k as f64, i as u64),
                id: RequestId(i as u64),
                bytes: 1,
                submitted: SimTime::ZERO,
            });
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some(s) = h.pop() {
            popped.push(s.tag() as u64);
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn equal_tags_break_ties_by_sequence() {
        let mut h: MinHeap<TaggedStream> = MinHeap::with_capacity(0);
        for seq in [3u64, 1, 2, 0] {
            h.push(TaggedStream {
                key: pack(42.0, seq),
                id: RequestId(seq),
                bytes: 1,
                submitted: SimTime::ZERO,
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|s| s.key as u64)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn min_heap_small_mode_crosses_into_heap_mode_and_back() {
        // Push past SMALL_MAX (forcing the one-time heapify), drain to
        // empty (reverting to small mode), then exercise small mode again:
        // pops must be globally key-ordered throughout.
        let mut h: MinHeap<TaggedStream> = MinHeap::with_capacity(0);
        let n = MinHeap::<TaggedStream>::SMALL_MAX * 3;
        let mut keys: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 977).collect();
        for (i, &k) in keys.iter().enumerate() {
            h.push(TaggedStream {
                key: pack(k as f64, i as u64),
                id: RequestId(i as u64),
                bytes: 1,
                submitted: SimTime::ZERO,
            });
        }
        assert!(h.heapified, "population above SMALL_MAX must heapify");
        keys.sort_unstable();
        let popped: Vec<u64> =
            std::iter::from_fn(|| h.pop().map(|s| s.tag() as u64)).collect();
        assert_eq!(popped, keys);
        assert!(!h.heapified, "draining empty reverts to small mode");
        // Small mode after the round trip still orders correctly.
        for (i, k) in [7u64, 3, 9, 1].into_iter().enumerate() {
            h.push(TaggedStream {
                key: pack(k as f64, i as u64),
                id: RequestId(i as u64),
                bytes: 1,
                submitted: SimTime::ZERO,
            });
        }
        assert!(!h.heapified);
        let small: Vec<u64> = std::iter::from_fn(|| h.pop().map(|s| s.tag() as u64)).collect();
        assert_eq!(small, vec![1, 3, 7, 9]);
    }

    #[test]
    fn min_heap_boundary_oscillation_matches_model() {
        // Satellite regression: oscillate the population across SMALL_MAX
        // *mid-run* with interleaved pushes and pops (grow to 1.5x the
        // threshold, shrink below half, many cycles). Every pop must match
        // a brute-force model regardless of which side of the unsorted-vec
        // <-> heap boundary the structure is on, and both transitions must
        // actually occur.
        let mut h: MinHeap<TaggedStream> = MinHeap::with_capacity(0);
        let mut model: Vec<u128> = Vec::new();
        let mut rng = simcore::Rng::new(0xB0DA_5C17);
        let small_max = MinHeap::<TaggedStream>::SMALL_MAX;
        let hi = small_max + small_max / 2;
        let (mut seq, mut growing, mut cycle) = (0u64, true, 0u32);
        let (mut crossed_up, mut crossed_down) = (0u32, 0u32);
        for _ in 0..6000 {
            // Heap mode only reverts on a full drain, so alternate the
            // shrink floor between "hover just under the threshold" and
            // "drain to empty" to hit both transition directions often.
            let lo = if cycle % 2 == 0 { small_max / 2 } else { 0 };
            if growing && h.len() >= hi {
                growing = false;
            } else if !growing && h.len() <= lo {
                growing = true;
                cycle += 1;
            }
            let push = h.is_empty() || if growing { !rng.chance(0.25) } else { rng.chance(0.25) };
            let was_heapified = h.heapified;
            if push {
                let key = pack(rng.uniform(0.0, 1000.0), seq);
                h.push(TaggedStream {
                    key,
                    id: RequestId(seq),
                    bytes: 1,
                    submitted: SimTime::ZERO,
                });
                model.push(key);
                seq += 1;
                if !was_heapified && h.heapified {
                    crossed_up += 1;
                }
            } else {
                let min = model.iter().copied().min().expect("model non-empty");
                model.swap_remove(model.iter().position(|&k| k == min).unwrap());
                let got = h.pop().expect("heap non-empty").key;
                assert_eq!(got, min, "pop diverged from model at seq {seq}");
                if was_heapified && !h.heapified {
                    crossed_down += 1;
                }
            }
            assert_eq!(h.len(), model.len());
        }
        assert!(crossed_up >= 3, "crossed into heap mode only {crossed_up}x");
        assert!(crossed_down >= 3, "reverted to small mode only {crossed_down}x");
        while let Some(s) = h.pop() {
            let min = model.iter().copied().min().unwrap();
            model.swap_remove(model.iter().position(|&k| k == min).unwrap());
            assert_eq!(s.key, min);
        }
        assert!(!h.heapified && h.is_empty() && model.is_empty());
    }

    #[test]
    fn reset_matches_a_fresh_ost() {
        // Drive a target through noise, freeze and a partial drain, reset
        // it, and check a fresh workload completes at exactly the instants
        // a brand-new OST would produce.
        let p = testbed().ost;
        let mut used = VtOst::new(p.clone());
        for i in 0..20u64 {
            used.submit(SimTime::ZERO, RequestId(i), MIB + i * 8192, OpKind::WriteDirect);
        }
        used.set_noise(SimTime::from_secs_f64(0.5), 0.3);
        used.freeze(SimTime::from_secs_f64(1.0));
        used.unfreeze(SimTime::from_secs_f64(2.0));
        let at = used.next_completion().unwrap();
        used.advance(at);
        used.reset();
        assert_eq!(used.active_streams(), 0);
        assert_eq!(used.cache_used(), 0);
        assert!(used.next_completion().is_none());

        let mut fresh = VtOst::new(p);
        for ost in [&mut used, &mut fresh] {
            for i in 0..8u64 {
                ost.submit(SimTime::ZERO, RequestId(i), 4 * MIB + i * 4096, OpKind::Write);
            }
        }
        loop {
            let (a, b) = (used.next_completion(), fresh.next_completion());
            assert_eq!(a, b, "reset OST must wake at identical instants");
            let Some(at) = a else { break };
            let da: Vec<_> = used.advance(at).iter().map(|c| c.id).collect();
            let db: Vec<_> = fresh.advance(at).iter().map(|c| c.id).collect();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn drain_completes_in_bounded_wakes() {
        // The asymptotic claim behind the whole engine: W writers drain in
        // at most 2W + O(1) wakes (one possible overhead-expiry wake per
        // submission burst, one completion wake each), not O(W²) work.
        let w = 256u64;
        let mut ost = VtOst::new(testbed().ost);
        for i in 0..w {
            ost.submit(SimTime::ZERO, RequestId(i), MIB + i * 4096, OpKind::WriteDirect);
        }
        let mut wakes = 0u64;
        let mut completions = 0u64;
        while let Some(at) = ost.next_completion() {
            wakes += 1;
            assert!(wakes <= 2 * w + 8, "event count must stay O(W)");
            completions += ost.advance(at).len() as u64;
        }
        assert_eq!(completions, w);
        assert_eq!(ost.active_streams(), 0);
    }

    #[test]
    fn lane_clock_rebases_when_lane_goes_idle() {
        let mut ost = VtOst::new(testbed().ost);
        ost.submit(SimTime::ZERO, RequestId(1), 8 * MIB, OpKind::WriteDirect);
        let mut at = SimTime::ZERO;
        while let Some(next) = ost.next_completion() {
            at = next;
            ost.advance(at);
        }
        assert_eq!(ost.disk.clock, 0.0, "idle lane clock rebased");
        // A second, later burst behaves exactly like a fresh one.
        ost.submit(at, RequestId(2), 8 * MIB, OpKind::WriteDirect);
        let done_at = loop {
            let next = ost.next_completion().expect("in flight");
            if !ost.advance(next).is_empty() {
                break next;
            }
        };
        let p = testbed().ost;
        let expect =
            at.as_secs_f64() + p.request_overhead + 8.0 * MIB as f64 / p.disk_peak.min(p.stream_cap);
        assert!((done_at.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn overhead_expiry_wake_is_spurious_but_finite() {
        let p = testbed().ost;
        let mut ost = VtOst::new(p.clone());
        ost.submit(SimTime::ZERO, RequestId(1), 128 * MIB, OpKind::WriteDirect);
        // First wake is the overhead expiry, which harvests nothing…
        let first = ost.next_completion().unwrap();
        assert!((first.as_secs_f64() - p.request_overhead).abs() < 1e-9);
        assert!(ost.advance(first).is_empty());
        // …and the second is the real completion.
        let second = ost.next_completion().unwrap();
        let expect = p.request_overhead + 128.0 * MIB as f64 / p.disk_peak.min(p.stream_cap);
        assert!((second.as_secs_f64() - expect).abs() < 1e-6);
        assert_eq!(ost.advance(second).len(), 1);
    }
}
