//! The reference OST engine: a per-`dt` settle loop over every stream.
//!
//! This is the original, straightforward realisation of the fluid model —
//! `settle` walks all W streams, `next_completion` scans all of them, and
//! `advance` scans again to harvest — so a W-writer drain costs O(W²)
//! events × work. It is kept as the executable specification for the
//! virtual-time engine ([`super::vt::VtOst`]) and selected by the
//! `baseline-engine` feature for before/after benchmarking.

use simcore::SimTime;

use crate::params::OstParams;

use super::{per_stream_rate, wake_delay, Lane, OpKind, OstCompletion, RequestId, BG_BIT, DONE_EPS};

#[derive(Clone, Debug)]
struct Stream {
    id: RequestId,
    lane: Lane,
    /// Seconds of fixed overhead still to burn before bytes move.
    overhead_left: f64,
    /// Bytes still to transfer.
    remaining: f64,
    /// Total size (for accounting).
    bytes: u64,
    /// Admission time (for latency accounting).
    submitted: SimTime,
}

/// One simulated storage target (reference settle-loop engine).
#[derive(Clone, Debug)]
pub struct RefOst {
    params: OstParams,
    streams: Vec<Stream>,
    /// Current external slowdown factor in (0, 1].
    noise_factor: f64,
    /// Frozen targets make zero progress (stall-mode failure injection).
    frozen: bool,
    /// Bytes of cache space reserved (admission control): landed bytes
    /// plus bytes still in flight on cache-lane streams.
    cache_reserved: f64,
    /// Bytes that have fully landed in the cache and are eligible to drain
    /// to disk.
    cache_landed: f64,
    last_settle: SimTime,
    n_disk: usize,
    n_cache: usize,
}

impl RefOst {
    /// Create an idle OST.
    pub fn new(params: OstParams) -> Self {
        RefOst {
            params,
            streams: Vec::new(),
            noise_factor: 1.0,
            frozen: false,
            cache_reserved: 0.0,
            cache_landed: 0.0,
            last_settle: SimTime::ZERO,
            n_disk: 0,
            n_cache: 0,
        }
    }

    /// Return the target to its freshly-constructed state, keeping the
    /// stream vector's capacity so a sweep can reuse one OST per seed
    /// without allocating.
    pub fn reset(&mut self) {
        self.streams.clear();
        self.noise_factor = 1.0;
        self.frozen = false;
        self.cache_reserved = 0.0;
        self.cache_landed = 0.0;
        self.last_settle = SimTime::ZERO;
        self.n_disk = 0;
        self.n_cache = 0;
    }

    /// Number of in-flight streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of in-flight disk-lane streams.
    pub fn disk_streams(&self) -> usize {
        self.n_disk
    }

    /// Bytes of cache space currently reserved (landed + in flight).
    pub fn cache_used(&self) -> u64 {
        self.cache_reserved as u64
    }

    /// Current external-noise slowdown factor.
    pub fn noise_factor(&self) -> f64 {
        self.noise_factor
    }

    fn lane_rate(&self, lane: Lane) -> f64 {
        per_stream_rate(&self.params, lane, self.n_disk, self.n_cache, self.noise_factor)
    }

    /// Advance all stream progress (and cache drain) from `last_settle` to
    /// `now`, without removing finished streams.
    fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_settle);
        let dt = (now - self.last_settle).as_secs_f64();
        if self.frozen {
            // A stalled target makes no progress at all (overhead, bytes,
            // cache drain); time simply passes it by.
            self.last_settle = now;
            return;
        }
        if dt > 0.0 {
            let disk_rate = self.lane_rate(Lane::Disk);
            let cache_rate = self.lane_rate(Lane::Cache);
            for s in &mut self.streams {
                let mut t = dt;
                if s.overhead_left > 0.0 {
                    let burn = s.overhead_left.min(t);
                    s.overhead_left -= burn;
                    t -= burn;
                }
                if t > 0.0 {
                    let rate = match s.lane {
                        Lane::Disk => disk_rate,
                        Lane::Cache => cache_rate,
                    };
                    s.remaining -= rate * t;
                }
            }
            // Cache drains to disk only while the disk lane is idle (an
            // approximation: the platters favour foreground traffic), and
            // only bytes that have fully landed are drainable.
            if self.n_disk == 0 && self.cache_landed > 0.0 {
                let drained =
                    (self.params.cache_drain * self.noise_factor * dt).min(self.cache_landed);
                self.cache_landed -= drained;
                self.cache_reserved = (self.cache_reserved - drained).max(0.0);
            }
        }
        self.last_settle = now;
    }

    /// Admit a request. Returns the lane decision implicitly via internal
    /// state; completions surface later through [`RefOst::advance`].
    pub fn submit(&mut self, now: SimTime, id: RequestId, bytes: u64, kind: OpKind) {
        self.settle(now);
        let cache_free = self.params.cache_capacity as f64 - self.cache_reserved;
        let lane = match kind {
            // Only requests up to the write-through threshold are cache
            // eligible (Fig. 1: 1-8 MB series ride the cache, 64 MB+ are
            // disk-bound from the start).
            OpKind::Write
                if bytes <= self.params.cache_max_request && (bytes as f64) <= cache_free =>
            {
                Lane::Cache
            }
            OpKind::Write | OpKind::WriteDirect => Lane::Disk,
            OpKind::Read => Lane::Disk,
        };
        match lane {
            Lane::Cache => {
                // Reserve cache space immediately so concurrent bursts see
                // the shrinking headroom.
                self.cache_reserved += bytes as f64;
                self.n_cache += 1;
            }
            Lane::Disk => self.n_disk += 1,
        }
        self.streams.push(Stream {
            id,
            lane,
            overhead_left: self.params.request_overhead,
            remaining: bytes as f64,
            bytes,
            submitted: now,
        });
    }

    /// Move time forward to `now`, appending every request finished by
    /// then to `done` (the owner's reusable scratch buffer — the hot loop
    /// allocates nothing).
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<OstCompletion>) {
        self.settle(now);
        let start = done.len();
        let mut i = 0;
        while i < self.streams.len() {
            if self.streams[i].overhead_left <= 0.0 && self.streams[i].remaining <= DONE_EPS {
                let s = self.streams.swap_remove(i);
                match s.lane {
                    Lane::Cache => {
                        self.n_cache -= 1;
                        self.cache_landed += s.bytes as f64;
                    }
                    Lane::Disk => self.n_disk -= 1,
                }
                done.push(OstCompletion {
                    id: s.id,
                    submitted: s.submitted,
                    bytes: s.bytes,
                });
            } else {
                i += 1;
            }
        }
        // Sort for deterministic completion ordering independent of
        // swap_remove shuffling; 0/1-entry harvests (the common case)
        // skip the sort entirely.
        if done.len() - start >= 2 {
            done[start..].sort_by_key(|c| c.id);
        }
    }

    /// Move time forward to `now` and return every request that has
    /// finished by then (allocating convenience wrapper over
    /// [`RefOst::advance_into`]).
    pub fn advance(&mut self, now: SimTime) -> Vec<OstCompletion> {
        let mut done = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// Update the external-noise factor (settling progress first).
    pub fn set_noise(&mut self, now: SimTime, factor: f64) {
        debug_assert!(factor > 0.0 && factor <= 1.0, "noise factor {factor}");
        self.settle(now);
        self.noise_factor = factor;
    }

    /// Freeze the target (stall-mode failure): in-flight and future
    /// streams are held with zero progress until [`RefOst::unfreeze`].
    pub fn freeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = true;
    }

    /// Thaw a frozen target; held streams resume from where they stopped.
    pub fn unfreeze(&mut self, now: SimTime) {
        self.settle(now);
        self.frozen = false;
    }

    /// Whether the target is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Error-mode failure: abort every in-flight stream, returning their
    /// request ids (sorted) so the owner can surface error completions.
    /// Cache state is wiped (the disk is gone; recovery brings back an
    /// empty target).
    pub fn fail_all(&mut self, now: SimTime) -> Vec<RequestId> {
        self.settle(now);
        let mut ids: Vec<RequestId> = self.streams.iter().map(|s| s.id).collect();
        // Sorted so both engines return the same order regardless of how
        // they store streams internally.
        ids.sort_unstable();
        self.streams.clear();
        self.n_disk = 0;
        self.n_cache = 0;
        self.cache_reserved = 0.0;
        self.cache_landed = 0.0;
        ids
    }

    /// Predict the absolute time of the next stream completion, given the
    /// current state. `None` if idle or frozen.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.streams.is_empty() || self.frozen {
            return None;
        }
        let disk_rate = self.lane_rate(Lane::Disk);
        let cache_rate = self.lane_rate(Lane::Cache);
        let mut best = f64::INFINITY;
        for s in &self.streams {
            let rate = match s.lane {
                Lane::Disk => disk_rate,
                Lane::Cache => cache_rate,
            };
            let t = s.overhead_left + (s.remaining.max(0.0)) / rate;
            if t < best {
                best = t;
            }
        }
        Some(self.last_settle.saturating_add(wake_delay(best)))
    }

    /// A conservative lower bound on the next *foreground* completion
    /// instant — see [`super::vt::VtOst::fg_completion_bound`] for the
    /// contract and the soundness argument. Both engines must agree on
    /// the *contract* (a true lower bound), not on the value: the bound
    /// only steers window sizes, never outcomes.
    pub fn fg_completion_bound(&self) -> Option<SimTime> {
        if self.frozen {
            return None;
        }
        let disk_max = self.params.disk_peak.min(self.params.stream_cap);
        let cache_max = self.params.cache_ingest_peak.min(self.params.stream_cap);
        let mut best = f64::INFINITY;
        for s in &self.streams {
            if s.id.0 & BG_BIT != 0 {
                continue;
            }
            let max = match s.lane {
                Lane::Disk => disk_max,
                Lane::Cache => cache_max,
            };
            best = best.min(s.overhead_left + (s.remaining - DONE_EPS).max(0.0) / max);
        }
        if best == f64::INFINITY {
            return None;
        }
        Some(self.last_settle.saturating_add(wake_delay(best)))
    }
}
