//! Shared plumbing for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Every harness prints the paper-style text table to stdout and appends
//! a machine-readable JSON line per row to `target/experiments/<id>.jsonl`
//! so EXPERIMENTS.md can be regenerated from artifacts.
//!
//! Sample counts default to paper-faithful values scaled down to keep a
//! full `cargo bench` run tractable; set `MANAGED_IO_SAMPLES` to raise
//! them (e.g. to the paper's 40 for Fig. 1).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use simcore::units::{GIB, MIB};

/// Samples per configuration, from `MANAGED_IO_SAMPLES` (default
/// `default`).
pub fn samples(default: usize) -> usize {
    std::env::var("MANAGED_IO_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Base RNG seed, from `MANAGED_IO_SEED` (default 2010 — the paper year).
pub fn base_seed() -> u64 {
    std::env::var("MANAGED_IO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2010)
}

/// Scale factor for process counts, from `MANAGED_IO_SCALE` in
/// (0, 1]. The full paper sweep (up to 16 384 writers) runs by default;
/// set e.g. `MANAGED_IO_SCALE=0.25` for a quick pass.
pub fn scale() -> f64 {
    std::env::var("MANAGED_IO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|f: f64| f.clamp(0.01, 1.0))
        .unwrap_or(1.0)
}

/// Apply the scale factor to a process count, keeping at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()) as usize).max(min)
}

/// Format bytes/sec as GiB/s with 2 decimals.
pub fn fmt_gibps(bps: f64) -> String {
    format!("{:.2}", bps / GIB as f64)
}

/// Format bytes/sec as MiB/s.
pub fn fmt_mibps(bps: f64) -> String {
    format!("{:.1}", bps / MIB as f64)
}

/// Format a byte size the way the paper labels series ("128 MB").
pub fn size_label(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{} GB", bytes / GIB)
    } else {
        format!("{} MB", bytes / MIB)
    }
}

/// Run independent `(config, seed)` replicates across worker threads,
/// merging results back in input order.
///
/// This is the campaign-level fan-out: each replicate is a whole
/// simulation, so the merged output is byte-identical to running the
/// replicates serially — `MANAGED_IO_THREADS=1` opts out of parallelism
/// without changing any artifact. Thin wrapper over
/// [`simcore::par::par_map`] so harnesses depend on one entry point.
pub fn par_replicates<C, R, F>(configs: Vec<C>, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    simcore::par::par_map(configs, run)
}

/// [`par_replicates`] over a shared immutable prefix (e.g. an
/// `adios_core::RunBase`): sweep points that differ only by seed share
/// the prepared state instead of rebuilding it per replicate. Thin
/// wrapper over [`simcore::par::par_map_with`]; merged results stay in
/// input order and byte-identical to a serial sweep.
pub fn par_replicates_with<S, C, R, F>(shared: &S, configs: Vec<C>, run: F) -> Vec<R>
where
    S: Sync,
    C: Send,
    R: Send,
    F: Fn(&S, C) -> R + Sync,
{
    simcore::par::par_map_with(shared, configs, run)
}

/// Append JSON rows for experiment `id` under `target/experiments/`.
pub struct ExperimentLog {
    path: PathBuf,
    rows: Vec<minijson::Value>,
}

impl ExperimentLog {
    /// Open (truncate) the log for an experiment id like `"fig1a"`.
    pub fn new(id: &str) -> Self {
        let dir = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&dir);
        ExperimentLog {
            path: dir.join(format!("{id}.jsonl")),
            rows: Vec::new(),
        }
    }

    /// Record one row.
    pub fn row(&mut self, value: minijson::Value) {
        self.rows.push(value);
    }

    /// Flush all rows to disk (one JSON object per line).
    pub fn flush(&self) {
        if let Ok(mut f) = fs::File::create(&self.path) {
            for r in &self.rows {
                let _ = writeln!(f, "{r}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels_match_paper_style() {
        assert_eq!(size_label(MIB), "1 MB");
        assert_eq!(size_label(128 * MIB), "128 MB");
        assert_eq!(size_label(GIB), "1 GB");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gibps(GIB as f64), "1.00");
        assert_eq!(fmt_mibps(1.5 * MIB as f64), "1.5");
    }

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(512, 16) >= 16);
    }
}
