//! Shared plumbing for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Every harness prints the paper-style text table to stdout and appends
//! a machine-readable JSON line per row to `target/experiments/<id>.jsonl`
//! so EXPERIMENTS.md can be regenerated from artifacts.
//!
//! Sample counts default to paper-faithful values scaled down to keep a
//! full `cargo bench` run tractable; set `MANAGED_IO_SAMPLES` to raise
//! them (e.g. to the paper's 40 for Fig. 1).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use simcore::units::{GIB, MIB};

/// Samples per configuration, from `MANAGED_IO_SAMPLES` (default
/// `default`).
pub fn samples(default: usize) -> usize {
    std::env::var("MANAGED_IO_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Base RNG seed, from `MANAGED_IO_SEED` (default 2010 — the paper year).
pub fn base_seed() -> u64 {
    std::env::var("MANAGED_IO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2010)
}

/// Scale factor for process counts, from `MANAGED_IO_SCALE` in
/// (0, 1]. The full paper sweep (up to 16 384 writers) runs by default;
/// set e.g. `MANAGED_IO_SCALE=0.25` for a quick pass.
pub fn scale() -> f64 {
    std::env::var("MANAGED_IO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|f: f64| f.clamp(0.01, 1.0))
        .unwrap_or(1.0)
}

/// Apply the scale factor to a process count, keeping at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()) as usize).max(min)
}

/// Format bytes/sec as GiB/s with 2 decimals.
pub fn fmt_gibps(bps: f64) -> String {
    format!("{:.2}", bps / GIB as f64)
}

/// Format bytes/sec as MiB/s.
pub fn fmt_mibps(bps: f64) -> String {
    format!("{:.1}", bps / MIB as f64)
}

/// Format a byte size the way the paper labels series ("128 MB").
pub fn size_label(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{} GB", bytes / GIB)
    } else {
        format!("{} MB", bytes / MIB)
    }
}

/// Run independent `(config, seed)` replicates across worker threads,
/// merging results back in input order.
///
/// This is the campaign-level fan-out: each replicate is a whole
/// simulation, so the merged output is byte-identical to running the
/// replicates serially — `MANAGED_IO_THREADS=1` opts out of parallelism
/// without changing any artifact. Thin wrapper over
/// [`simcore::par::par_map`] so harnesses depend on one entry point.
pub fn par_replicates<C, R, F>(configs: Vec<C>, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    simcore::par::par_map(configs, run)
}

/// [`par_replicates`] over a shared immutable prefix (e.g. an
/// `adios_core::RunBase`): sweep points that differ only by seed share
/// the prepared state instead of rebuilding it per replicate. Thin
/// wrapper over [`simcore::par::par_map_with`]; merged results stay in
/// input order and byte-identical to a serial sweep.
pub fn par_replicates_with<S, C, R, F>(shared: &S, configs: Vec<C>, run: F) -> Vec<R>
where
    S: Sync,
    C: Send,
    R: Send,
    F: Fn(&S, C) -> R + Sync,
{
    simcore::par::par_map_with(shared, configs, run)
}

/// Which engine variant this harness was compiled against.
pub fn engine_variant() -> &'static str {
    if cfg!(feature = "baseline") {
        "baseline"
    } else {
        "optimized"
    }
}

/// Short git commit of the working tree, or `"unknown"` outside a
/// checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Provenance stamp for `BENCH_*.json` artifacts. Keep-min merging is
/// only sound while the recorded numbers came from the same build and
/// host shape; this is what "same" means. `engine` records which
/// variants have contributed rows since the stamp was last fresh —
/// variants live side by side under per-variant keys (that's how the
/// before/after speedups are computed), so a variant switch must *not*
/// discard the other variant's rows, while a commit or thread-count
/// change must discard everything.
pub fn artifact_meta() -> minijson::Value {
    minijson::json!({
        "threads": simcore::par::threads() as u64,
        "engine": engine_variant(),
        "git_commit": git_commit(),
    })
}

/// Load a `BENCH_*.json` artifact for merging, enforcing the provenance
/// stamp: if the recorded `meta`'s `threads` or `git_commit` does not
/// match [`artifact_meta`] (older commit, different thread count), the
/// recorded rows are discarded and a fresh root is returned — keep-min
/// must never mix timings across incomparable builds. On a match the
/// stamp's `engine` field grows to include the current variant. Never
/// panics; a missing or unparsable artifact also starts fresh.
pub fn load_artifact(path: &str) -> minijson::Value {
    use minijson::Value;
    let meta = artifact_meta();
    let fresh = || Value::Obj(vec![("meta".to_string(), meta.clone())]);
    let Some(mut root) = fs::read_to_string(path)
        .ok()
        .and_then(|s| Value::parse(&s).ok())
    else {
        return fresh();
    };
    let Value::Obj(entries) = &mut root else {
        return fresh();
    };
    let field = |m: &Value, key: &str| -> Option<String> {
        let Value::Obj(pairs) = m else { return None };
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.to_string())
    };
    let Some(recorded) = entries.iter().find(|(k, _)| k == "meta").map(|(_, v)| v.clone()) else {
        eprintln!("note: {path} has no provenance stamp; starting fresh");
        return fresh();
    };
    let comparable = ["threads", "git_commit"]
        .iter()
        .all(|key| field(&recorded, key) == field(&meta, key));
    if !comparable {
        eprintln!(
            "note: {path} was recorded under different meta \
             (recorded {recorded}, current {meta}); starting fresh"
        );
        return fresh();
    }
    // Same build and host shape: keep the rows, widen the engine set.
    let mut engines: Vec<String> = field(&recorded, "engine")
        .map(|s| s.trim_matches('"').split('+').map(str::to_string).collect())
        .unwrap_or_default();
    if !engines.iter().any(|e| e == engine_variant()) {
        engines.push(engine_variant().to_string());
        engines.sort();
    }
    if let Some((_, Value::Obj(pairs))) = entries.iter_mut().find(|(k, _)| k == "meta") {
        pairs.retain(|(k, _)| k != "engine");
        pairs.push(("engine".to_string(), Value::Str(engines.join("+"))));
    }
    root
}

/// Write a merged artifact back, newline-terminated.
pub fn store_artifact(path: &str, root: &minijson::Value) {
    let _ = fs::write(path, format!("{root}\n"));
}

/// Append JSON rows for experiment `id` under `target/experiments/`.
pub struct ExperimentLog {
    path: PathBuf,
    rows: Vec<minijson::Value>,
}

impl ExperimentLog {
    /// Open (truncate) the log for an experiment id like `"fig1a"`.
    pub fn new(id: &str) -> Self {
        let dir = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&dir);
        ExperimentLog {
            path: dir.join(format!("{id}.jsonl")),
            rows: Vec::new(),
        }
    }

    /// Record one row.
    pub fn row(&mut self, value: minijson::Value) {
        self.rows.push(value);
    }

    /// Flush all rows to disk (one JSON object per line).
    pub fn flush(&self) {
        if let Ok(mut f) = fs::File::create(&self.path) {
            for r in &self.rows {
                let _ = writeln!(f, "{r}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels_match_paper_style() {
        assert_eq!(size_label(MIB), "1 MB");
        assert_eq!(size_label(128 * MIB), "128 MB");
        assert_eq!(size_label(GIB), "1 GB");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gibps(GIB as f64), "1.00");
        assert_eq!(fmt_mibps(1.5 * MIB as f64), "1.5");
    }

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(512, 16) >= 16);
    }

    #[test]
    fn artifact_meta_guard_discards_incomparable_rows() {
        use minijson::Value;
        let dir = std::env::temp_dir().join("managed-io-bench-meta-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("BENCH_meta_guard.json");
        let path = path.to_str().unwrap();

        // Fresh load stamps current meta and nothing else.
        let _ = fs::remove_file(path);
        let root = load_artifact(path);
        let Value::Obj(entries) = &root else { panic!("root is an object") };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "meta");

        // A row recorded under the same stamp survives a reload.
        let mut root = root;
        if let Value::Obj(entries) = &mut root {
            entries.push(("bench".to_string(), minijson::json!({ "min_s": 1.0 })));
        }
        store_artifact(path, &root);
        let reloaded = load_artifact(path);
        let Value::Obj(entries) = &reloaded else { panic!() };
        assert!(entries.iter().any(|(k, _)| k == "bench"), "same stamp keeps rows");

        // Tampering with git_commit discards the rows (stale build).
        let stale = fs::read_to_string(path)
            .unwrap()
            .replace(&git_commit(), "0000000");
        fs::write(path, stale).unwrap();
        let fresh = load_artifact(path);
        let Value::Obj(entries) = &fresh else { panic!() };
        assert!(
            !entries.iter().any(|(k, _)| k == "bench"),
            "commit mismatch must discard recorded rows"
        );

        // A different engine variant keeps rows and widens the stamp.
        store_artifact(path, &reloaded);
        let other = if engine_variant() == "optimized" { "baseline" } else { "optimized" };
        let widened = fs::read_to_string(path)
            .unwrap()
            .replace(engine_variant(), other);
        fs::write(path, widened).unwrap();
        let cross = load_artifact(path);
        let Value::Obj(entries) = &cross else { panic!() };
        assert!(
            entries.iter().any(|(k, _)| k == "bench"),
            "engine switch must keep the other variant's rows"
        );
        let (_, meta) = entries.iter().find(|(k, _)| k == "meta").unwrap();
        assert!(
            meta.to_string().contains("baseline+optimized"),
            "stamp records both variants: {meta}"
        );
        let _ = fs::remove_file(path);
    }
}
