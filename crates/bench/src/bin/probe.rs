//! Quick calibration probe (not a paper artifact): checks the headline
//! shapes at paper scale before the full benchmark harnesses run.

use adios_core::{AdaptiveOpts, Interference, Method};
use iostats::Summary;
use managed_io_bench::{fmt_gibps, fmt_mibps, size_label};
use simcore::units::{GIB, MIB};
use storesim::params::{jaguar, xtp, xtp_with_competing_ior};
use workloads::campaign::{mean_imbalance, sample_results};
use workloads::IorConfig;

fn main() {
    let machine = jaguar();
    let t0 = std::time::Instant::now();

    println!("== Fig1 probe: IOR POSIX, 512 OSTs, Jaguar ==");
    for &size in &[MIB, 8 * MIB, 128 * MIB] {
        for &writers in &[512usize, 1024, 2048, 4096, 8192, 16384] {
            let cfg = IorConfig {
                writers,
                bytes_per_writer: size,
                osts: 512,
            };
            let rs = cfg.run_samples(&machine, &Interference::None, 4, 100);
            let agg = Summary::of(&workloads::ior::aggregate_bandwidths(&rs));
            let per = Summary::of(&workloads::ior::mean_per_writer_bandwidths(&rs));
            println!(
                "  {:>7} x {:>8}: agg {:>7} GiB/s (min {} max {})  per-writer {:>7} MiB/s",
                writers,
                size_label(size),
                fmt_gibps(agg.mean),
                fmt_gibps(agg.min),
                fmt_gibps(agg.max),
                fmt_mibps(per.mean),
            );
        }
    }

    println!("== TableI probe: 512 writers x 128 MB, 1/OST ==");
    let ior = IorConfig {
        writers: 512,
        bytes_per_writer: 128 * MIB,
        osts: 512,
    };
    let rs = ior.run_samples(&machine, &Interference::None, 40, 900);
    let s = Summary::of(&workloads::ior::aggregate_bandwidths(&rs));
    println!(
        "  Jaguar: avg {} GiB/s, CV {:.0}%, imbalance avg {:.2}",
        fmt_gibps(s.mean),
        s.cv() * 100.0,
        mean_imbalance(&rs)
    );
    let xtp_m = xtp();
    let ior_x = IorConfig {
        writers: 512,
        bytes_per_writer: 128 * MIB,
        osts: 40,
    };
    let rq = ior_x.run_samples(&xtp_m, &Interference::None, 30, 1500);
    let sq = Summary::of(&workloads::ior::aggregate_bandwidths(&rq));
    let ri = ior_x.run_samples(&xtp_with_competing_ior(), &Interference::None, 30, 1600);
    let si = Summary::of(&workloads::ior::aggregate_bandwidths(&ri));
    println!(
        "  XTP quiet: avg {} GiB/s CV {:.0}% | with Int: avg {} GiB/s CV {:.0}%",
        fmt_gibps(sq.mean),
        sq.cv() * 100.0,
        fmt_gibps(si.mean),
        si.cv() * 100.0
    );

    println!("== Fig5 probe: Pixie3D, MPI vs Adaptive ==");
    for (label, size) in [("small 2MB", 2 * MIB), ("large 128MB", 128 * MIB), ("XL 1GB", GIB)] {
        for &n in &[512usize, 2048, 8192, 16384] {
            let mut line = format!("  {label:>12} n={n:>5}:");
            for (name, method) in [
                ("MPI", Method::MpiIo { stripe_count: 160 }),
                (
                    "Adpt",
                    Method::Adaptive {
                        targets: 512,
                        opts: AdaptiveOpts::default(),
                    },
                ),
            ] {
                let rs = sample_results(&machine, n, size, &method, &Interference::None, 3, 300);
                let agg =
                    Summary::of(&rs.iter().map(|r| r.aggregate_bandwidth()).collect::<Vec<_>>());
                line += &format!("  {} {:>7} GiB/s", name, fmt_gibps(agg.mean));
            }
            println!("{line}");
        }
    }
    println!("total {:?}", t0.elapsed());
}
