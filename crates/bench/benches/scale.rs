//! Scale benchmarks: the asymptotic payoff of the virtual-time OST engine.
//!
//! Three sweeps:
//!
//! 1. **Drain**: a 256-writers-per-OST single-target drain, reference
//!    settle-loop vs virtual-time engine in one binary (both are always
//!    compiled) — the issue's ≥5× gate.
//! 2. **Writers-per-OST sweep** (4 → 512): per-drain cost for both
//!    engines, demonstrating near-linear vs quadratic event cost.
//! 3. **Ranks sweep** (512 → 16k): full end-to-end campaigns on the full
//!    672-OST Jaguar preset — Pixie3D small under adaptive and tuned
//!    MPI-IO at every scale, plus the paper's 16k-rank XGC1 — reported
//!    under whichever engine the `baseline` feature selected.
//!
//! Results merge into `BENCH_scale.json` at the workspace root, keyed by
//! bench name and engine variant; run twice for before/after in one
//! artifact:
//!
//! ```text
//! cargo bench --bench scale                      # virtual-time engine
//! cargo bench --bench scale --features baseline  # reference engine
//! ```
//!
//! Knobs: `MANAGED_IO_SMOKE=1` shrinks everything for CI (ranks capped at
//! 1024, single iterations); `MANAGED_IO_SEED` moves the campaign seeds.

use std::hint::black_box;
use std::time::Instant;

use managed_io_bench::{base_seed, fmt_gibps};
use minijson::{json, Value};
use simcore::units::MIB;
use simcore::SimTime;
use storesim::ost::reference::RefOst;
use storesim::ost::vt::VtOst;
use storesim::ost::{OpKind, RequestId};
use storesim::params::testbed;
use workloads::ScaleCampaign;

/// Which engine the campaign-level benchmarks ran against.
const VARIANT: &str = if cfg!(feature = "baseline") {
    "baseline"
} else {
    "optimized"
};

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

struct Timing {
    iters: usize,
    min_s: f64,
    mean_s: f64,
}

/// Warm up once, then time `iters` runs of `f`; keep min and mean.
fn time_n<F: FnMut() -> u64>(iters: usize, mut f: F) -> Timing {
    black_box(f());
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    Timing {
        iters,
        min_s: min,
        mean_s: total / iters as f64,
    }
}

/// Drive `w` direct writes (distinct sizes, so completions separate in
/// time — the event-count worst case) through one OST to completion.
macro_rules! drain_fn {
    ($name:ident, $ost:ty) => {
        fn $name(w: u64) -> u64 {
            let mut ost = <$ost>::new(testbed().ost);
            for i in 0..w {
                ost.submit(
                    SimTime::ZERO,
                    RequestId(i),
                    MIB + i * 8192,
                    OpKind::WriteDirect,
                );
            }
            let mut scratch = Vec::new();
            let mut done = 0u64;
            while let Some(at) = ost.next_completion() {
                ost.advance_into(at, &mut scratch);
                done += scratch.drain(..).count() as u64;
            }
            assert_eq!(done, w);
            done
        }
    };
}

drain_fn!(drain_reference, RefOst);
drain_fn!(drain_vt, VtOst);

/// One campaign run (every seed's full simulation): returns total record
/// count so the optimizer can't elide the work, printing the bandwidth.
fn run_campaign(c: &ScaleCampaign, samples: usize, seed: u64) -> u64 {
    let rows = c.compare(samples, seed);
    let mut records = 0u64;
    for r in &rows {
        println!(
            "    {:<28} {:<9} mean {:>8} GiB/s  (std of write times {:.3}s)",
            c.name,
            r.method,
            fmt_gibps(r.bandwidth.mean),
            r.write_time_std
        );
        records += r.nprocs as u64;
    }
    records
}

/// Merge `rows` into BENCH_scale.json: `{bench: {variant: timing}}` plus
/// recomputed `speedups` (baseline min / optimized min) where both
/// variants are present.
///
/// A variant's stored row is only replaced when the new `min_s` beats the
/// recorded one: on a shared/noisy box the min over *all* runs is the
/// noise-robust estimate, and repeated refreshes can then only sharpen
/// the artifact. Delete a row by hand after a change that genuinely
/// slows an engine down.
fn merge_into_artifact(rows: Vec<(String, &str, Timing)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    entries.retain(|(k, _)| k != "speedups");
    for (name, variant, t) in rows {
        let row = json!({
            "iters": t.iters,
            "min_s": t.min_s,
            "mean_s": t.mean_s,
        });
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            let recorded = pairs
                .iter()
                .find(|(k, _)| k == variant)
                .and_then(|(_, v)| v.get("min_s"))
                .and_then(Value::as_f64);
            if recorded.is_some_and(|old| old <= t.min_s) {
                continue;
            }
            pairs.retain(|(k, _)| k != variant);
            pairs.push((variant.to_string(), row));
        }
    }
    let mut speedups = Vec::new();
    for (name, v) in entries.iter() {
        let base = v.get("baseline").and_then(|b| b.get("min_s")).and_then(Value::as_f64);
        let opt = v.get("optimized").and_then(|o| o.get("min_s")).and_then(Value::as_f64);
        if let (Some(b), Some(o)) = (base, opt) {
            if o > 0.0 {
                speedups.push((name.clone(), Value::Num(b / o)));
            }
        }
    }
    if !speedups.is_empty() {
        entries.push(("speedups".to_string(), Value::Obj(speedups)));
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

fn main() {
    let smoke = smoke();
    println!("scale — variant: {VARIANT}, smoke: {smoke}\n");
    let mut rows: Vec<(String, &str, Timing)> = Vec::new();
    let mut report = |name: &str, variant: &'static str, t: Timing| {
        println!(
            "{name:<36} [{variant:<9}] min {:>10.3} ms   mean {:>10.3} ms   ({} iters)",
            t.min_s * 1e3,
            t.mean_s * 1e3,
            t.iters
        );
        rows.push((name.to_string(), variant, t));
    };

    // 1. The gate: 256 writers per OST, both engines, one binary. Repeat
    //    the whole drain several times per sample so the timing rises
    //    well above clock granularity.
    let drain_iters = if smoke { 2 } else { 30 };
    let reps: u64 = if smoke { 1 } else { 5 };
    report(
        "drain_256_writers_per_ost",
        "optimized",
        time_n(drain_iters, || (0..reps).map(|_| drain_vt(256)).sum()),
    );
    report(
        "drain_256_writers_per_ost",
        "baseline",
        time_n(drain_iters, || (0..reps).map(|_| drain_reference(256)).sum()),
    );

    // 2. Writers-per-OST sweep: 4 → 512, both engines. Equal *event*
    //    counts, asymptotically different per-event work.
    for w in [4u64, 16, 64, 256, 512] {
        let iters = if smoke { 1 } else { 20 };
        report(
            &format!("drain_w{w}"),
            "optimized",
            time_n(iters, || (0..reps).map(|_| drain_vt(w)).sum()),
        );
        report(
            &format!("drain_w{w}"),
            "baseline",
            time_n(iters, || (0..reps).map(|_| drain_reference(w)).sum()),
        );
    }

    // 3. Ranks sweep: full-Jaguar Pixie3D campaigns, adaptive vs MPI-IO
    //    inside each run, reported under the compiled engine. Smoke mode
    //    stops at 1024 ranks; the reference engine's quadratic drains are
    //    exactly what makes the big configurations expensive, so this is
    //    where before/after shows end to end.
    let seed = base_seed();
    let rank_cap = if smoke { 1024 } else { 16384 };
    for ranks in workloads::RANK_SWEEP {
        if ranks > rank_cap {
            println!("    (skipping {ranks} ranks: over the smoke cap)");
            continue;
        }
        let c = ScaleCampaign::pixie3d_small(ranks);
        let iters = if smoke || ranks >= 8192 { 1 } else { 2 };
        report(
            &format!("campaign_pixie3d_small_{ranks}"),
            VARIANT,
            time_n(iters, || run_campaign(&c, 1, seed)),
        );
    }

    // The paper's 16k-rank XGC1 configuration (38 MB/process, 672 OSTs).
    if !smoke {
        let c = ScaleCampaign::xgc1(16384);
        report(
            "campaign_xgc1_16384",
            VARIANT,
            time_n(1, || run_campaign(&c, 1, seed)),
        );
    }

    merge_into_artifact(rows);
    println!("\nresults merged into {BENCH_PATH}");
}
