//! Data-plane microbenchmarks: the byte-pushing fast paths under the
//! simulator — CRC-64 checksumming, PG encoding, and the shared-prefix
//! campaign sweep — measured before/after the slice-by-8 / zero-copy /
//! `RunBase` optimisations.
//!
//! Three comparisons, each timed as `baseline` vs `optimized` inside one
//! binary (both implementations are always compiled):
//!
//! * `crc64_*` — slice-by-8 [`bpfmt::crc64`] against the retained
//!   byte-at-a-time [`bpfmt::crc64_bytewise`], one-shot over a large
//!   buffer and streaming via [`bpfmt::Crc64`] in wire-sized chunks.
//! * `pg_encode_checked` — steady-state PG encoding through a reused
//!   [`bpfmt::EncodeScratch`] against the allocating
//!   [`bpfmt::encode_pg_opts`].
//! * `faulted_campaign_sweep` — an integrity-enabled, silently-corrupted
//!   real-bytes campaign through `RunBase::prepare` + `run_seed_sweep`
//!   against independent `run_with_faults` calls per seed; the harness
//!   asserts both arms produce byte-identical subfiles before timing.
//!
//! Results merge into `BENCH_dataplane.json` at the workspace root,
//! `{bench: {variant: timing}}` plus recomputed `speedups`, mirroring
//! `BENCH_engine.json`. Knobs:
//!
//! * `MANAGED_IO_SMOKE=1` — 1 iteration over shrunk inputs (CI).
//! * `MANAGED_IO_CRC_GATE=<x>` — exit nonzero unless the one-shot CRC
//!   speedup is at least `x` (CI regression gate).

use std::hint::black_box;
use std::time::Instant;

use adios_core::{
    run_with_faults, AdaptiveOpts, DataSpec, FaultConfig, Interference, Method, RunBase, RunSpec,
};
use bpfmt::{crc64, crc64_bytewise, encode_pg_opts, Crc64, EncodeScratch, IntegrityOpts, VarBlock};
use managed_io_bench::{base_seed, fmt_gibps, par_replicates, par_replicates_with};
use minijson::Value;
use simcore::Rng;
use storesim::params::testbed;
use workloads::pixie3d::Pixie3dConfig;

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json");

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

struct Timing {
    iters: usize,
    min_s: f64,
    mean_s: f64,
}

/// Warm up once, then time `iters` runs of `f`; keep min and mean.
fn time_n<F: FnMut() -> u64>(iters: usize, mut f: F) -> Timing {
    black_box(f());
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    Timing {
        iters,
        min_s: min,
        mean_s: total / iters as f64,
    }
}

fn random_buf(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn pg_blocks(seed: u64) -> Vec<VarBlock> {
    let mut rng = Rng::new(seed);
    let var = |name: &str, n: usize, rng: &mut Rng| {
        let vals: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1.0)).collect();
        VarBlock::from_f64(name, vec![8, n as u64], vec![0, 0], vec![1, n as u64], &vals)
    };
    vec![
        var("psi", 2048, &mut rng),
        var("density", 1024, &mut rng),
        var("b_field", 4096, &mut rng),
        var("pressure", 512, &mut rng),
    ]
}

/// The campaign both sweep arms run: an integrity-enabled real-bytes
/// adaptive output under a silent-corruption script (the only fault kind
/// that composes with real data), so every replicate exercises encode,
/// CRC, the protocol, and the corruption bookkeeping end to end.
fn campaign_spec(blocks: &[Vec<VarBlock>], seed: u64) -> RunSpec {
    RunSpec {
        machine: testbed(),
        nprocs: blocks.len(),
        data: DataSpec::Real(blocks.to_vec()),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts {
                integrity: IntegrityOpts::on(),
                ..Default::default()
            },
        },
        interference: Interference::None,
        seed,
    }
}

fn campaign_faults() -> FaultConfig {
    FaultConfig {
        storage: storesim::FaultScript::none().silent_corruption(0.0, 0, None, 0.4),
        ..Default::default()
    }
}

/// Cheap consumption of a replicate inside the timed loops: fold the
/// write records so the runs cannot be dead-code-eliminated, without
/// adding a constant re-checksum cost that would dilute the comparison.
fn timeline_digest(out: &adios_core::RunOutput) -> u64 {
    out.result
        .records
        .iter()
        .fold(0u64, |acc, r| {
            acc.wrapping_mul(0x100000001B3).wrapping_add(r.end.as_nanos() ^ r.bytes)
        })
}

/// Digest of everything a campaign replicate produced — used to assert
/// the shared-prefix sweep is byte-identical to independent runs.
fn campaign_digest(out: &adios_core::RunOutput) -> u64 {
    let mut h = Crc64::new();
    for r in &out.result.records {
        h.update(&r.rank.to_le_bytes());
        h.update(&r.bytes.to_le_bytes());
        h.update(&r.start.as_nanos().to_le_bytes());
        h.update(&r.end.as_nanos().to_le_bytes());
    }
    if let Some(subfiles) = &out.subfiles {
        let mut names: Vec<&String> = subfiles.keys().collect();
        names.sort();
        for name in names {
            h.update(name.as_bytes());
            h.update(&subfiles[name]);
        }
    }
    h.finish()
}

/// Merge `rows` into BENCH_dataplane.json: `{bench: {variant: timing}}`
/// plus recomputed `speedups` (baseline min / optimized min) where both
/// variants are present.
fn merge_into_artifact(rows: Vec<(String, &str, Timing, Option<u64>)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    entries.retain(|(k, _)| k != "speedups");
    for (name, variant, t, bytes) in rows {
        let mut row = vec![
            ("iters".to_string(), Value::Num(t.iters as f64)),
            ("min_s".to_string(), Value::Num(t.min_s)),
            ("mean_s".to_string(), Value::Num(t.mean_s)),
        ];
        if let Some(b) = bytes {
            row.push(("bytes".to_string(), Value::Num(b as f64)));
        }
        let row = Value::Obj(row);
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            pairs.retain(|(k, _)| k != variant);
            pairs.push((variant.to_string(), row));
        }
    }
    let mut speedups = Vec::new();
    for (name, v) in entries.iter() {
        let base = v.get("baseline").and_then(|b| b.get("min_s")).and_then(Value::as_f64);
        let opt = v.get("optimized").and_then(|o| o.get("min_s")).and_then(Value::as_f64);
        if let (Some(b), Some(o)) = (base, opt) {
            if o > 0.0 {
                speedups.push((name.clone(), Value::Num(b / o)));
            }
        }
    }
    if !speedups.is_empty() {
        entries.push(("speedups".to_string(), Value::Obj(speedups)));
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

fn main() {
    let smoke = smoke();
    let crc_len: usize = if smoke { 1 << 20 } else { 64 << 20 };
    let (crc_iters, enc_iters, sweep_iters) = if smoke { (1, 1, 1) } else { (20, 20, 5) };
    let enc_reps: usize = if smoke { 50 } else { 500 };
    let seeds: Vec<u64> = (0..if smoke { 2 } else { 6 }).map(|i| base_seed() + i).collect();

    println!("data_plane — smoke: {smoke}\n");
    let mut rows: Vec<(String, &str, Timing, Option<u64>)> = Vec::new();
    let mut report = |name: &str, variant: &'static str, t: Timing, bytes: Option<u64>| {
        let thrpt = bytes
            .map(|b| format!("   {} GiB/s", fmt_gibps(b as f64 / t.min_s)))
            .unwrap_or_default();
        println!(
            "{name:<28} [{variant:<9}] min {:>9.3} ms   mean {:>9.3} ms   ({} iters){thrpt}",
            t.min_s * 1e3,
            t.mean_s * 1e3,
            t.iters
        );
        rows.push((name.to_string(), variant, t, bytes));
    };

    // --- CRC-64: one-shot over a large buffer. ---
    let buf = random_buf(crc_len, base_seed() ^ 0xC4C);
    let crc_name = format!("crc64_{}MiB", crc_len >> 20);
    report(
        &crc_name,
        "optimized",
        time_n(crc_iters, || crc64(&buf)),
        Some(buf.len() as u64),
    );
    report(
        &crc_name,
        "baseline",
        time_n(if smoke { 1 } else { 3 }, || crc64_bytewise(&buf)),
        Some(buf.len() as u64),
    );

    // --- CRC-64: streaming in wire-sized chunks (the verified-reader
    // access pattern: many small updates through `Crc64`). ---
    report(
        "crc64_streaming_4KiB_chunks",
        "optimized",
        time_n(crc_iters, || {
            let mut h = Crc64::new();
            for chunk in buf.chunks(4096) {
                h.update(chunk);
            }
            h.finish()
        }),
        Some(buf.len() as u64),
    );

    // --- PG encode: reused scratch vs allocating one-shot. ---
    let blocks = pg_blocks(base_seed() ^ 0xB10C);
    let integrity = IntegrityOpts::on();
    let mut scratch = EncodeScratch::new();
    {
        let (a, ea) = scratch.encode_pg(0, 0, &blocks, integrity);
        let (b, eb) = encode_pg_opts(0, 0, &blocks, integrity);
        assert_eq!(a, &b[..], "scratch encode diverged from one-shot encode");
        assert_eq!(ea, &eb[..]);
    }
    let pg_bytes = (enc_reps as u64) * bpfmt::pg_encoded_size_opts(&blocks, integrity);
    report(
        "pg_encode_checked",
        "optimized",
        time_n(enc_iters, || {
            let mut acc = 0u64;
            for step in 0..enc_reps as u32 {
                let (bytes, _) = scratch.encode_pg(0, step, &blocks, integrity);
                acc = acc.wrapping_add(bytes.len() as u64);
            }
            acc
        }),
        Some(pg_bytes),
    );
    report(
        "pg_encode_checked",
        "baseline",
        time_n(enc_iters, || {
            let mut acc = 0u64;
            for step in 0..enc_reps as u32 {
                let (bytes, _) = encode_pg_opts(0, step, &blocks, integrity);
                acc = acc.wrapping_add(bytes.len() as u64);
            }
            acc
        }),
        Some(pg_bytes),
    );

    // --- Campaign sweep: shared RunBase prefix vs independent runs. ---
    let cfg = Pixie3dConfig {
        cube: if smoke { 4 } else { 16 },
        nprocs: if smoke { 8 } else { 16 },
    };
    let mut rng = Rng::new(base_seed() ^ 0xCA3);
    let rank_blocks: Vec<Vec<VarBlock>> =
        (0..cfg.nprocs).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let faults = campaign_faults();
    // Correctness first: both arms must produce byte-identical artifacts.
    let base = RunBase::prepare(campaign_spec(&rank_blocks, 0));
    let shared_digests: Vec<u64> = base
        .run_seed_sweep_with_faults(&seeds, &faults)
        .iter()
        .map(campaign_digest)
        .collect();
    let solo_digests: Vec<u64> = seeds
        .iter()
        .map(|&s| campaign_digest(&run_with_faults(campaign_spec(&rank_blocks, s), faults.clone())))
        .collect();
    assert_eq!(
        shared_digests, solo_digests,
        "shared-prefix sweep is not byte-identical to independent runs"
    );
    // Both arms fan out over the same worker pool and digest-and-drop
    // each replicate inside its worker; the only difference is the
    // shared prefix. The baseline arm is the pre-RunBase campaign idiom:
    // every replicate rebuilds the spec (cloning all payload blocks),
    // the rank-size table, and the output plan from scratch. The two
    // arms are timed in alternation so slow drift on a shared host hits
    // both equally.
    let sweep_shared = || {
        let base = RunBase::prepare(campaign_spec(&rank_blocks, 0));
        par_replicates_with(&base, seeds.clone(), |b, s| {
            timeline_digest(&b.run_seed_with_faults(s, &faults))
        })
        .into_iter()
        .fold(0u64, u64::wrapping_add)
    };
    let sweep_rebuild = || {
        par_replicates(seeds.clone(), |s| {
            timeline_digest(&run_with_faults(campaign_spec(&rank_blocks, s), faults.clone()))
        })
        .into_iter()
        .fold(0u64, u64::wrapping_add)
    };
    let (mut opt, mut basl) = (
        Timing { iters: sweep_iters, min_s: f64::INFINITY, mean_s: 0.0 },
        Timing { iters: sweep_iters, min_s: f64::INFINITY, mean_s: 0.0 },
    );
    black_box(sweep_shared());
    black_box(sweep_rebuild());
    for _ in 0..sweep_iters {
        let t0 = Instant::now();
        black_box(sweep_shared());
        let dt = t0.elapsed().as_secs_f64();
        opt.min_s = opt.min_s.min(dt);
        opt.mean_s += dt / sweep_iters as f64;
        let t0 = Instant::now();
        black_box(sweep_rebuild());
        let dt = t0.elapsed().as_secs_f64();
        basl.min_s = basl.min_s.min(dt);
        basl.mean_s += dt / sweep_iters as f64;
    }
    report("faulted_campaign_sweep", "optimized", opt, None);
    report("faulted_campaign_sweep", "baseline", basl, None);

    // CRC regression gate (CI): the one-shot speedup must clear the bar.
    let crc_speedup = {
        let min_of = |variant: &str| {
            rows.iter()
                .find(|(n, v, _, _)| *n == crc_name && *v == variant)
                .map(|(_, _, t, _)| t.min_s)
                .expect("crc rows reported")
        };
        min_of("baseline") / min_of("optimized")
    };
    println!("\ncrc64 one-shot speedup: {crc_speedup:.2}x");
    merge_into_artifact(rows);
    println!("results merged into {BENCH_PATH}");

    if let Some(gate) = std::env::var("MANAGED_IO_CRC_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if crc_speedup < gate {
            eprintln!("FAIL: crc64 speedup {crc_speedup:.2}x below required {gate}x");
            std::process::exit(1);
        }
        println!("crc gate: {crc_speedup:.2}x >= {gate}x ok");
    }
}
