//! **Figure 6** — XGC1 IO Performance, 38 MB/process (§IV-B).
//!
//! The XGC1 gyrokinetic PIC kernel, weak-scaled on the Jaguar preset:
//! MPI-IO vs adaptive, base and artificial-interference environments.
//!
//! Paper shape to reproduce: performance sits between Pixie3D's small and
//! large models; adaptive improves on MPI by 30 % to >224 % across all
//! scales.

use adios_core::Interference;
use iostats::Table;
use managed_io_bench::{base_seed, fmt_gibps, samples, scaled, ExperimentLog};
use storesim::params::jaguar;
use workloads::campaign::compare_at_scale;
use workloads::Xgc1Config;

fn main() {
    let machine = jaguar();
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("fig6");

    let scales = [512usize, 1024, 2048, 4096, 8192, 16384];

    for (env, interference) in [
        ("base", Interference::None),
        ("interference", Interference::paper_default()),
    ] {
        println!("\nFigure 6 — XGC1 (38 MB/proc) — {env}");
        let mut table = Table::new(vec!["procs", "method", "avg GiB/s", "min", "max", "gain"]);
        for &n in &scales {
            let n = scaled(n, 64);
            let cfg = Xgc1Config::paper(n);
            let rows = compare_at_scale(
                &machine,
                cfg.nprocs,
                cfg.bytes_per_process(),
                512,
                &interference,
                n_samples,
                seed + 31 * n as u64,
            );
            let mpi = rows[0].bandwidth.mean;
            for r in &rows {
                let gain = if r.method == "Adaptive" {
                    format!("{:+.0}%", 100.0 * (r.bandwidth.mean / mpi - 1.0))
                } else {
                    String::new()
                };
                table.row(vec![
                    r.nprocs.to_string(),
                    r.method.to_string(),
                    fmt_gibps(r.bandwidth.mean),
                    fmt_gibps(r.bandwidth.min),
                    fmt_gibps(r.bandwidth.max),
                    gain,
                ]);
                log.row(minijson::json!({
                    "figure": "6",
                    "environment": env,
                    "procs": r.nprocs,
                    "method": r.method,
                    "bytes_per_proc": cfg.bytes_per_process(),
                    "avg_bps": r.bandwidth.mean,
                    "min_bps": r.bandwidth.min,
                    "max_bps": r.bandwidth.max,
                    "samples": n_samples,
                }));
            }
        }
        println!("{}", table.render());
    }
    println!("(paper: adaptive improvement ranges from 30% to >224% across scales)");
    log.flush();
}
