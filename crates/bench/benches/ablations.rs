//! **Ablations** — design choices the paper calls out but does not
//! evaluate, measured here (DESIGN.md experiment index, "Ablations"):
//!
//! 1. `writers_per_target` — §III-B3: "one might use 2 or 3 simultaneous
//!    writers per storage location ... We have not experimented with
//!    these generalizations." We do.
//! 2. Work stealing on/off — adaptive vs the authors' earlier stagger
//!    method under asymmetric load.
//! 3. Coordinator scheduling — round-robin across writing SCs (the
//!    paper's "spread evenly") vs draining one SC to completion.
//! 4. Steal-from-tail vs steal-from-head of the waiting queue.
//! 5. Stagger-open of the sub-coordinator files (metadata relief).

use adios_core::{AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use iostats::{Summary, Table};
use managed_io_bench::{base_seed, fmt_gibps, samples, scaled, ExperimentLog};
use simcore::units::MIB;
use storesim::params::jaguar;
use workloads::campaign::sample_results;

fn bw(machine: &storesim::MachineConfig, n: usize, bytes: u64, method: &Method,
      interference: &Interference, k: usize, seed: u64) -> Summary {
    let rs = sample_results(machine, n, bytes, method, interference, k, seed);
    Summary::of(&rs.iter().map(|r| r.aggregate_bandwidth()).collect::<Vec<_>>())
}

fn main() {
    let machine = jaguar();
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("ablations");
    let n = scaled(8192, 256);
    let bytes = 128 * MIB;
    let interference = Interference::paper_default();

    println!("Ablations — Pixie3D-large-like workload, {n} procs x 128 MB, Jaguar, under interference\n");
    let mut table = Table::new(vec!["variant", "avg GiB/s", "min", "max"]);

    let variants: Vec<(String, AdaptiveOpts)> = vec![
        ("adaptive (paper defaults)".into(), AdaptiveOpts::default()),
        (
            "writers_per_target = 2".into(),
            AdaptiveOpts {
                writers_per_target: 2,
                ..Default::default()
            },
        ),
        (
            "writers_per_target = 3".into(),
            AdaptiveOpts {
                writers_per_target: 3,
                ..Default::default()
            },
        ),
        (
            "no work stealing (stagger)".into(),
            AdaptiveOpts {
                work_stealing: false,
                ..Default::default()
            },
        ),
        (
            "drain-first coordinator".into(),
            AdaptiveOpts {
                drain_first: true,
                ..Default::default()
            },
        ),
        (
            "steal from queue head".into(),
            AdaptiveOpts {
                steal_from_tail: false,
                ..Default::default()
            },
        ),
        (
            "staggered SC opens".into(),
            AdaptiveOpts {
                stagger_opens: true,
                ..Default::default()
            },
        ),
    ];

    for (name, opts) in variants {
        let method = Method::Adaptive { targets: 512, opts };
        let s = bw(&machine, n, bytes, &method, &interference, n_samples, seed);
        table.row(vec![
            name.clone(),
            fmt_gibps(s.mean),
            fmt_gibps(s.min),
            fmt_gibps(s.max),
        ]);
        log.row(minijson::json!({
            "experiment": "ablation",
            "variant": name,
            "procs": n,
            "avg_bps": s.mean,
            "min_bps": s.min,
            "max_bps": s.max,
            "samples": n_samples,
        }));
    }

    // Reference baselines.
    for (name, method) in [
        ("MPI-IO 160-stripe baseline", Method::MpiIo { stripe_count: 160 }),
        ("POSIX file-per-process", Method::Posix { targets: 512 }),
    ] {
        let s = bw(&machine, n, bytes, &method, &interference, n_samples, seed);
        table.row(vec![
            name.to_string(),
            fmt_gibps(s.mean),
            fmt_gibps(s.min),
            fmt_gibps(s.max),
        ]);
        log.row(minijson::json!({
            "experiment": "ablation",
            "variant": name,
            "procs": n,
            "avg_bps": s.mean,
            "samples": n_samples,
        }));
    }
    println!("{}", table.render());

    // Cache-size sensitivity: how the write-back cache shapes the
    // 8 MB-vs-128 MB behaviour of Fig. 1.
    println!("\nCache-eligibility sweep (POSIX, 8 MB/writer, writers = {n}):");
    let mut cache_table = Table::new(vec!["cache_max_request", "avg GiB/s"]);
    for max_req in [0u64, 8 * MIB, 64 * MIB] {
        let mut m = machine.clone();
        m.ost.cache_max_request = max_req;
        let spec_bw = bw(
            &m,
            n,
            8 * MIB,
            &Method::Posix { targets: 512 },
            &Interference::None,
            n_samples,
            seed + 5,
        );
        cache_table.row(vec![format!("{} MiB", max_req / MIB), fmt_gibps(spec_bw.mean)]);
        log.row(minijson::json!({
            "experiment": "cache-sweep",
            "cache_max_request": max_req,
            "avg_bps": spec_bw.mean,
        }));
    }
    println!("{}", cache_table.render());

    // Keep RunSpec/DataSpec in the public surface exercised.
    let _unused = RunSpec {
        machine: machine.clone(),
        nprocs: 8,
        data: DataSpec::Uniform(MIB),
        method: Method::Posix { targets: 8 },
        interference: Interference::None,
        seed,
    };
    log.flush();
}
