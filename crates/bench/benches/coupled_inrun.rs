//! **Protocol lookahead** — wide coupled macro-windows in the cluster
//! driver, measured against the stepwise one-event-per-iteration
//! reference on a full cluster-coupled campaign.
//!
//! The stepwise driver advances storage to the very next event, so
//! in-run shard windows hold one lane event and sharding can only cost
//! (the Amdahl residual recorded by the `in_run` bench). The lookahead
//! driver advances storage across `min(next cluster event, deadline)`
//! macro-windows — the driver-side safety property makes that horizon
//! sound — so windows span many lane events across many shards and the
//! PR-9 shard pool finally pays off in real campaigns.
//!
//! Grid: {stepwise, lookahead} × {1, 2, 8} shard threads, FNV-hashed
//! completion-stream identity asserted on **every rep** of **every**
//! cell against the stepwise serial reference. Results merge keep-min
//! into `BENCH_coupled.json`, stamped with engine/threads/commit
//! provenance. The ≥1.5× gate (lookahead ×8 vs stepwise ×1) is enforced
//! only on hosts with ≥8 cores and outside `MANAGED_IO_SMOKE=1`;
//! elsewhere the residual is recorded honestly.

use std::time::Instant;

use adios_core::fault::FaultConfig;
use adios_core::{AdaptiveOpts, DataSpec, Interference, Method, RunBase, RunScratch, RunSpec};
use managed_io_bench::{base_seed, engine_variant, load_artifact, store_artifact};
use minijson::{json, Value};
use simcore::units::MIB;
use storesim::params::franklin;

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coupled.json");
const SHARDS: [usize; 3] = [1, 2, 8];

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

/// FNV-1a over the full completion stream: cheap byte-identity witness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// One coupled campaign at a pinned (driver loop, shard count): warm
/// scratch across seeds, every record field and the loss accounting
/// folded into the stream hash. Returns (wall seconds, hash).
fn campaign(base: &RunBase, seeds: &[u64], lookahead: bool, shards: usize) -> (f64, Fnv) {
    let faults = FaultConfig::none();
    let started = Instant::now();
    let mut hash = Fnv::new();
    let mut scratch = RunScratch::with_shard_threads(shards);
    scratch.set_lookahead(lookahead);
    for &seed in seeds {
        let out = base.run_seed_scratch(seed, &faults, &mut scratch);
        for w in &out.result.records {
            hash.mix(w.rank as u64);
            hash.mix(w.bytes);
            hash.mix(w.start.as_nanos());
            hash.mix(w.end.as_nanos());
            hash.mix(w.ost.0 as u64);
        }
        hash.mix(out.result.end.as_nanos());
        hash.mix(out.outcome.lost_bytes);
    }
    (started.elapsed().as_secs_f64(), hash)
}

/// Keep-min merge of one `{bench: {variant: row}}` cell.
fn merge_cell(entries: &mut Vec<(String, Value)>, bench: &str, mut row: Value) {
    let by_variant = match entries.iter_mut().find(|(k, _)| k == bench) {
        Some((_, v)) => v,
        None => {
            entries.push((bench.to_string(), Value::Obj(Vec::new())));
            &mut entries.last_mut().unwrap().1
        }
    };
    let Value::Obj(pairs) = by_variant else { return };
    if let Some((_, old)) = pairs.iter().find(|(k, _)| k == engine_variant()) {
        keep_min(&mut row, old);
    }
    pairs.retain(|(k, _)| k != engine_variant());
    pairs.push((engine_variant().to_string(), row));
}

/// Recursively keep the smaller of recorded/new for every `*_s` timing.
fn keep_min(new: &mut Value, old: &Value) {
    if let (Value::Obj(np), Value::Obj(op)) = (new, old) {
        for (k, v) in np.iter_mut() {
            let Some((_, o)) = op.iter().find(|(ok, _)| ok == k) else {
                continue;
            };
            match (&mut *v, o) {
                (Value::Num(n), Value::Num(prev)) if k.ends_with("_s") && *prev < *n => {
                    *v = Value::Num(*prev);
                }
                (v @ Value::Obj(_), o @ Value::Obj(_)) => keep_min(v, o),
                _ => {}
            }
        }
    }
}

fn main() {
    let smoke = smoke();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (reps, seeds_n) = if smoke { (1, 1) } else { (3, 3) };
    println!(
        "coupled_inrun — variant: {}, {cores} cores, smoke: {smoke}\n",
        engine_variant()
    );

    // A storage-heavy coupled campaign: dense competing-stream
    // interference (many targets, small renewing writes) so lane-local
    // storage events dominate the event mix — the regime the paper's
    // petascale traces live in, and the one the stepwise driver
    // serializes hardest.
    let base = RunBase::prepare(RunSpec {
        machine: franklin(),
        nprocs: if smoke { 16 } else { 32 },
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 16,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::CompetingStreams {
            osts: 96,
            streams_per_ost: 6,
            bytes: 4 * MIB,
        },
        seed: 0,
    });
    let seeds: Vec<u64> = (0..seeds_n).map(|i| base_seed() ^ 0xC0_07ED ^ i).collect();

    let mut rows: Vec<(String, Value)> = Vec::new();
    let mut reference: Option<Fnv> = None;
    let mut min_of = |lookahead: bool, shards: usize, reference: &mut Option<Fnv>| {
        let label = if lookahead { "lookahead" } else { "stepwise" };
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (wall, hash) = campaign(&base, &seeds, lookahead, shards);
            match reference {
                None => *reference = Some(hash),
                Some(r) => assert_eq!(
                    *r, hash,
                    "{label} x{shards} diverged from the stepwise serial reference"
                ),
            }
            best = best.min(wall);
        }
        println!("{label:>9} x{shards}: min {:>8.3} ms", best * 1e3);
        rows.push((format!("{label}_shards{shards}"), json!({ "min_s": best })));
        best
    };

    let stepwise1 = min_of(false, 1, &mut reference);
    let mut best_lookahead8 = f64::INFINITY;
    for &shards in &SHARDS {
        let wall = min_of(true, shards, &mut reference);
        if shards == 8 {
            best_lookahead8 = wall;
        }
    }

    let speedup = stepwise1 / best_lookahead8;
    let enforced = cores >= 8 && !smoke;
    println!("\ncoupled speedup (lookahead x8 vs stepwise x1): {speedup:.2} (gate enforced: {enforced})");
    rows.push(("speedup_8".to_string(), Value::Num(speedup)));
    rows.push((
        "gate".to_string(),
        json!({
            "required": 1.5,
            "measured": speedup,
            "enforced": enforced,
            "cores": cores as u64,
        }),
    ));

    let mut root = load_artifact(BENCH_PATH);
    if let Value::Obj(entries) = &mut root {
        merge_cell(entries, "coupled_lookahead", Value::Obj(rows));
    }
    store_artifact(BENCH_PATH, &root);
    println!("\nresults merged into {BENCH_PATH}");

    assert!(
        !enforced || speedup >= 1.5,
        "coupled lookahead gate: {speedup:.2}x at 8 shard threads on {cores} cores (need 1.5x)"
    );
}
