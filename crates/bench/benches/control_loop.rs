//! **Control loop** — the closed-loop straggler defense, measured: under
//! limping disks and brownout waves the adaptive protocol with the online
//! control loop (straggler detection, speculative re-issue, knob tuning)
//! beats the fault-hardened static schedule on P99 job completion and on
//! run-to-run variability, with zero lost bytes; on a clean machine the
//! loop converges to the static schedule and costs nothing but its
//! control traffic. Results merge into `BENCH_control.json` at the
//! workspace root, keyed by scenario and engine variant.
//! `MANAGED_IO_SMOKE=1` shrinks the seed sweep for CI.

use adios_core::{run_with_faults, DataSpec, Interference, RunSpec};
use iostats::{quantile, Summary, Table};
use managed_io_bench::{base_seed, size_label, ExperimentLog};
use minijson::{json, Value};
use simcore::units::MIB;
use storesim::params::testbed;
use workloads::straggler::{control_methods, StragglerScenario};

/// Which engine the runs used (the control loop sits above the engine,
/// so both variants must show the same win).
const VARIANT: &str = if cfg!(feature = "baseline") {
    "baseline"
} else {
    "optimized"
};

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_control.json");

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

/// Merge `rows` into BENCH_control.json: `{scenario: {variant: value}}`.
fn merge_into_artifact(rows: Vec<(String, Value)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    for (name, row) in rows {
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            pairs.retain(|(k, _)| k != VARIANT);
            pairs.push((VARIANT.to_string(), row));
        }
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

/// One (scenario, method) cell of the matrix.
struct Cell {
    spans: Vec<f64>,
    lost: u64,
    spec_granted: u64,
    spec_won: u64,
    complete: bool,
}

fn main() {
    let machine = testbed();
    let nprocs = 32usize;
    let bytes = 64 * MIB;
    let targets = 8usize;
    let seeds = if smoke() { 5 } else { 20 };
    let mut log = ExperimentLog::new("control_loop");
    let mut artifact: Vec<(String, Value)> = Vec::new();

    println!(
        "Closed-loop straggler defense — {nprocs} procs x {} over {targets} targets, \
         testbed, {seeds} seeds per cell\n",
        size_label(bytes)
    );
    let mut table = Table::new(vec![
        "scenario", "method", "mean (s)", "P99 (s)", "CV", "lost", "spec won/granted",
    ]);

    for scenario in StragglerScenario::matrix() {
        let mut cells: Vec<(&str, Cell)> = Vec::new();
        for (mname, method) in control_methods(targets) {
            let mut cell = Cell {
                spans: Vec::new(),
                lost: 0,
                spec_granted: 0,
                spec_won: 0,
                complete: true,
            };
            for i in 0..seeds {
                let seed = base_seed() + i as u64;
                let out = run_with_faults(
                    RunSpec {
                        machine: machine.clone(),
                        nprocs,
                        data: DataSpec::Uniform(bytes),
                        method: method.clone(),
                        interference: Interference::None,
                        seed,
                    },
                    scenario.fault_config(targets, seed),
                );
                cell.spans.push(out.result.full_span);
                cell.lost += out.outcome.lost_bytes;
                cell.complete &= out.outcome.complete;
                if let Some(p) = &out.protocol {
                    cell.spec_granted += p.spec_granted;
                    cell.spec_won += p.spec_won;
                }
            }
            let s = Summary::of(&cell.spans);
            let p99 = quantile(&cell.spans, 0.99);
            table.row(vec![
                scenario.name().to_string(),
                mname.to_string(),
                format!("{:.2}", s.mean),
                format!("{p99:.2}"),
                format!("{:.3}", s.cv()),
                size_label(cell.lost),
                format!("{}/{}", cell.spec_won, cell.spec_granted),
            ]);
            log.row(json!({
                "experiment": "straggler-matrix",
                "scenario": scenario.name(),
                "method": mname,
                "mean_s": s.mean,
                "p99_s": p99,
                "cv": s.cv(),
                "lost_bytes": cell.lost,
                "spec_granted": cell.spec_granted,
                "spec_won": cell.spec_won,
                "complete": cell.complete,
            }));
            cells.push((mname, cell));
        }

        let [(_, st), (_, cl)] = <[(&str, Cell); 2]>::try_from(cells)
            .ok()
            .expect("two methods per scenario");
        let (st_s, cl_s) = (Summary::of(&st.spans), Summary::of(&cl.spans));
        let (st_p99, cl_p99) = (quantile(&st.spans, 0.99), quantile(&cl.spans, 0.99));

        // The acceptance gates: nobody loses a byte, every run completes,
        // and the loop wins where there is a straggler to beat.
        assert_eq!(st.lost, 0, "{}: static lost bytes", scenario.name());
        assert_eq!(cl.lost, 0, "{}: closed-loop lost bytes", scenario.name());
        assert!(st.complete && cl.complete, "{}: incomplete run", scenario.name());
        assert!(
            cl.spec_won <= cl.spec_granted,
            "{}: more speculations won than granted",
            scenario.name()
        );
        match scenario {
            StragglerScenario::Clean => {
                // Convergence: the loop must not slow a healthy machine by
                // more than noise (no speculation should even fire).
                assert_eq!(cl.spec_granted, 0, "clean run speculated");
                assert!(
                    cl_p99 <= st_p99 * 1.02,
                    "clean: closed-loop P99 {cl_p99:.2}s vs static {st_p99:.2}s"
                );
            }
            StragglerScenario::LimpingDisk | StragglerScenario::LimpingPair => {
                assert!(
                    cl_p99 < st_p99,
                    "{}: closed-loop P99 {cl_p99:.2}s did not beat static {st_p99:.2}s",
                    scenario.name()
                );
                assert!(
                    cl_s.cv() <= st_s.cv() + 1e-9,
                    "{}: closed-loop CV {:.4} worse than static {:.4}",
                    scenario.name(),
                    cl_s.cv(),
                    st_s.cv()
                );
            }
            StragglerScenario::BrownoutWave => {
                assert!(
                    cl_p99 <= st_p99,
                    "brownout-wave: closed-loop P99 {cl_p99:.2}s above static {st_p99:.2}s"
                );
            }
        }

        let static_row = json!({
            "mean_s": st_s.mean, "p99_s": st_p99, "cv": st_s.cv(),
        });
        let closed_row = json!({
            "mean_s": cl_s.mean,
            "p99_s": cl_p99,
            "cv": cl_s.cv(),
            "spec_granted": cl.spec_granted,
            "spec_won": cl.spec_won,
        });
        artifact.push((
            scenario.name().to_string(),
            json!({
                "static": static_row,
                "closed_loop": closed_row,
                "p99_speedup": st_p99 / cl_p99,
                "seeds": seeds,
            }),
        ));
    }

    println!("{}", table.render());
    println!(
        "The closed loop flags the limping targets, freezes their queue\n\
         depth so new members steer to healthy OSTs, and speculatively\n\
         re-issues the writes already stuck on them — every byte accounted\n\
         for exactly once. Clean runs converge to the static schedule."
    );
    merge_into_artifact(artifact);
    println!("\nresults merged into {BENCH_PATH}");
    log.flush();
}
