//! **Data integrity** — end-to-end silent-corruption handling, measured:
//! under seeded silent-corruption windows (bit-flips below the checksum
//! layer) the adaptive method with the checked BP layout detects every
//! damaged block on verify-on-read and an online scrub pass repairs them
//! all, while the MPI-IO baseline — no checksums, no scrub — returns the
//! damaged bytes as if they were fine. Prints a scenario x method matrix
//! of written/corrupt/repaired accounting plus the scrub cost.

use adios_core::{
    run_restart_read_with, run_scrub, run_with_faults, AdaptiveOpts, DataSpec, FaultConfig,
    FaultTolerance, Interference, Method, RunSpec,
};
use iostats::{outcome_table, OutcomeRow};
use managed_io_bench::{base_seed, size_label, ExperimentLog};
use simcore::units::MIB;
use storesim::FaultScript;

fn scenarios() -> Vec<(&'static str, FaultScript)> {
    vec![
        ("no corruption", FaultScript::none()),
        (
            "50% corruption on OST 0, whole run",
            FaultScript::none().silent_corruption(0.0, 0, None, 0.5),
        ),
        (
            "100% corruption on OSTs 0-1, first 30 s",
            FaultScript::none()
                .silent_corruption(0.0, 0, Some(30.0), 1.0)
                .silent_corruption(0.0, 1, Some(30.0), 1.0),
        ),
        (
            "50% corruption on half the targets",
            (0..4).fold(FaultScript::none(), |s, o| {
                s.silent_corruption(0.0, o, None, 0.5)
            }),
        ),
    ]
}

fn main() {
    let machine = storesim::params::testbed();
    let seed = base_seed();
    let nprocs = 32usize;
    let bytes = 64 * MIB;
    let targets = 8usize;
    let mut log = ExperimentLog::new("data_integrity");

    println!(
        "Data integrity matrix — {nprocs} procs x {} over {targets} targets, testbed, seed {seed}\n",
        size_label(bytes)
    );
    let mut rows: Vec<OutcomeRow> = Vec::new();
    let mut scrub_notes: Vec<String> = Vec::new();

    for (name, script) in scenarios() {
        let faults = FaultConfig {
            storage: script,
            ..Default::default()
        };
        for (mname, method) in [
            ("mpi-io", Method::MpiIo { stripe_count: targets }),
            (
                "adaptive+scrub",
                Method::Adaptive {
                    targets,
                    opts: AdaptiveOpts::default(),
                },
            ),
        ] {
            let scrubbed = mname == "adaptive+scrub";
            let out = run_with_faults(
                RunSpec {
                    machine: machine.clone(),
                    nprocs,
                    data: DataSpec::Uniform(bytes),
                    method,
                    interference: Interference::None,
                    seed,
                },
                faults.clone(),
            );
            let (repaired, unrepaired, scrub_cost) = if scrubbed {
                // Online scrub: verify every block, rewrite the damaged
                // ones through the retry/work-shift policy.
                let report = run_scrub(
                    &machine,
                    &out.result.records,
                    &out.oracle,
                    8,
                    FaultTolerance::enabled(),
                    seed ^ 0x5C9B_0001,
                );
                (
                    report.outcome.repaired,
                    report.outcome.corrupt + report.outcome.unread,
                    report.elapsed_secs,
                )
            } else {
                // The baseline reads everything back without checksums:
                // the corrupt blocks come back as ordinary data.
                let plan = adios_core::ReadPlan::from_records(&out.result.records, 8);
                let read = run_restart_read_with(
                    &machine,
                    &plan,
                    seed ^ 0x0BA5_E11E,
                    &FaultConfig::none(),
                    Some(&out.oracle),
                );
                (0, read.outcome.corrupt + read.outcome.unread, 0.0)
            };
            rows.push(OutcomeRow {
                label: format!("{name} / {mname}"),
                total_bytes: out.outcome.total_bytes,
                written_bytes: out.outcome.written_bytes,
                lost_bytes: out.outcome.lost_bytes,
                corrupt_blocks: out.integrity.corrupt_records,
                repaired_blocks: repaired,
                unrepaired_blocks: unrepaired,
                rewritten_bytes: out.protocol.as_ref().map_or(0, |p| p.bytes_rewritten),
                reconstructed_bytes: out.protocol.as_ref().map_or(0, |p| p.bytes_reconstructed),
            });
            if scrubbed && scrub_cost > 0.0 {
                scrub_notes.push(format!(
                    "  {name}: scrub pass {:.2} s over {} blocks",
                    scrub_cost,
                    out.result.records.len()
                ));
            }
            log.row(minijson::json!({
                "experiment": "integrity-matrix",
                "scenario": name,
                "method": mname,
                "full_span_s": out.result.full_span,
                "written_bytes": out.outcome.written_bytes,
                "lost_bytes": out.outcome.lost_bytes,
                "oracle_events": out.integrity.oracle_events,
                "corrupt_records": out.integrity.corrupt_records,
                "corrupt_bytes": out.integrity.corrupt_bytes,
                "repaired_blocks": repaired,
                "unrepaired_blocks": unrepaired,
                "scrub_secs": scrub_cost,
            }));
        }
    }
    println!("{}", outcome_table(&rows).render());
    if !scrub_notes.is_empty() {
        println!("\nScrub cost:");
        for n in &scrub_notes {
            println!("{n}");
        }
    }
    println!(
        "\nEvery adaptive+scrub row ends clean: verify-on-read catches each\n\
         oracle-flagged block and the scrub rewrites it. The baseline rows\n\
         keep their corrupt blocks — without checksums nothing even notices."
    );
    log.flush();
}
