//! **§II-3 — Alternatives to Adaptive IO**, made quantitative.
//!
//! The paper argues that asynchronous IO, data staging, and static
//! file-splitting reduce the *impact* of variability without addressing
//! it. This harness measures each claim on the simulator:
//!
//! 1. **Asynchronous IO** — replay a 20-step application (30-minute
//!    compute phases) whose per-step drain times come from measured MPI-IO
//!    vs adaptive runs, with 0/1/4-step buffers. Consistently slow IO
//!    blocks the app regardless of buffering; adaptive drains simply fit.
//! 2. **Data staging** — apparent (app-visible) vs durable bandwidth for
//!    roomy and tight staging buffers; tight buffers collapse the
//!    apparent advantage.
//! 3. **Restart read** — read the adaptive output set back through its
//!    index layout (the §V PLFS concern): read bandwidth vs write
//!    bandwidth.

use adios_core::readback::{run_restart_read, ReadPlan};
use adios_core::staging::{run_staged, StagingOpts};
use adios_core::{
    multistep::{replay, required_bandwidth, AppModel},
    run, AdaptiveOpts, DataSpec, Interference, Method, OutputPlan, RunSpec,
};
use iostats::Table;
use managed_io_bench::{base_seed, fmt_gibps, samples, scaled, ExperimentLog};
use simcore::units::{GIB, MIB, TIB};
use storesim::params::jaguar;
use workloads::campaign::sample_results;

fn main() {
    let machine = jaguar();
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("alternatives");
    let n = scaled(4096, 256);
    let bytes = 128 * MIB;

    // ---- 1. Asynchronous IO ------------------------------------------------
    // The paper's §I regime: an XL checkpoint every 30 minutes. MPI's
    // drain exceeds the compute phase at scale, so no finite buffer
    // saves it; adaptive drains fit comfortably.
    let xl_n = scaled(16384, 512);
    let xl_bytes = GIB;
    println!("§II-3 (1): asynchronous IO with bounded buffers");
    println!(
        "20 output steps, 30 min compute each, {xl_n} procs x 1 GB, drains measured per method\n"
    );
    let mut async_table = Table::new(vec![
        "method", "buffer steps", "blocked (s)", "IO fraction",
    ]);
    for (name, method) in [
        ("MPI", Method::MpiIo { stripe_count: 160 }),
        (
            "Adaptive",
            Method::Adaptive {
                targets: 512,
                opts: AdaptiveOpts::default(),
            },
        ),
    ] {
        // Measured drain times, cycled over 20 steps.
        let rs = sample_results(
            &machine,
            xl_n,
            xl_bytes,
            &method,
            &Interference::paper_default(),
            n_samples,
            seed + 900,
        );
        let measured: Vec<f64> = rs.iter().map(|r| r.write_span()).collect();
        let io_times: Vec<f64> = (0..20).map(|k| measured[k % measured.len()]).collect();
        for buffer_steps in [0usize, 1, 4] {
            let t = replay(
                &io_times,
                AppModel {
                    compute_secs: 1800.0,
                    buffer_steps,
                },
            );
            async_table.row(vec![
                name.to_string(),
                buffer_steps.to_string(),
                format!("{:.0}", t.total_blocked()),
                format!("{:.2}%", t.io_fraction() * 100.0),
            ]);
            log.row(minijson::json!({
                "experiment": "async-io",
                "method": name,
                "buffer_steps": buffer_steps,
                "blocked_s": t.total_blocked(),
                "io_fraction": t.io_fraction(),
            }));
        }
    }
    println!("{}", async_table.render());
    let budget = required_bandwidth(3 * TIB, 1800.0, 0.05);
    println!(
        "(§I budget check: 3 TB per 30-minute step within 5% wall clock needs {} GiB/s sustained)\n",
        fmt_gibps(budget)
    );

    // ---- 2. Data staging ---------------------------------------------------
    println!("§II-3 (2): data staging — apparent vs durable bandwidth");
    let mut staging_table = Table::new(vec![
        "staging buffers", "apparent GiB/s", "durable GiB/s", "ratio",
    ]);
    let plan = OutputPlan::uniform(n, 512, machine.ost_count, bytes);
    for (label, buffer) in [("roomy (4 GiB/stager)", 4 * GIB), ("tight (192 MiB/stager)", 192 * MIB)] {
        let opts = StagingOpts {
            stagers: 128,
            buffer_bytes: buffer,
            targets: 128,
        };
        let res = run_staged(&machine, &plan, &opts, seed + 1200);
        staging_table.row(vec![
            label.to_string(),
            fmt_gibps(res.apparent_bandwidth()),
            fmt_gibps(res.durable_bandwidth()),
            format!("{:.1}x", res.apparent_bandwidth() / res.durable_bandwidth()),
        ]);
        log.row(minijson::json!({
            "experiment": "staging",
            "buffer_bytes": buffer,
            "apparent_bps": res.apparent_bandwidth(),
            "durable_bps": res.durable_bandwidth(),
        }));
    }
    println!("{}", staging_table.render());
    println!("(the paper: staging helps while buffers last, but does not remove interference)\n");

    // ---- 3. Restart read ---------------------------------------------------
    println!("§V: restart read of an adaptive output set through its index layout");
    let out = run(RunSpec {
        machine: machine.clone(),
        nprocs: n,
        data: DataSpec::Uniform(bytes),
        method: Method::Adaptive {
            targets: 512,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: seed + 1500,
    });
    let write_bw = out.result.aggregate_bandwidth();
    let mut read_table = Table::new(vec!["readers", "read GiB/s", "vs write"]);
    for readers in [n / 16, n / 4, n] {
        let plan = ReadPlan::from_records(&out.result.records, readers.max(1));
        let res = run_restart_read(&machine, &plan, seed + 1600);
        read_table.row(vec![
            readers.to_string(),
            fmt_gibps(res.aggregate_bandwidth()),
            format!("{:.2}x", res.aggregate_bandwidth() / write_bw),
        ]);
        log.row(minijson::json!({
            "experiment": "restart-read",
            "readers": readers,
            "read_bps": res.aggregate_bandwidth(),
            "write_bps": write_bw,
        }));
    }
    println!("{}", read_table.render());
    log.flush();
}
