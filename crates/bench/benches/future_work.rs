//! **§VI — Future work, implemented**: "Our future work will examine the
//! benefits of adaptive IO on systems beyond Lustre at ORNL, including
//! Franklin at NERSC, PanFS on Sandia's XTP, and perhaps, GPFS on a
//! BlueGene/P machine."
//!
//! This harness runs the Fig. 5(b)-style MPI-vs-adaptive comparison on
//! all four machine presets, plus the failure-injection scenario §V
//! attributes to NERSC (a few slow targets dominating IO time).

use adios_core::{AdaptiveOpts, Interference, Method};
use iostats::Table;
use managed_io_bench::{base_seed, fmt_gibps, samples, scaled, ExperimentLog};
use simcore::units::MIB;
use storesim::params::{bluegene_gpfs, franklin, jaguar, xtp, MachineConfig};
use workloads::campaign::compare_at_scale;

fn main() {
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("future_work");

    let machines: [(MachineConfig, usize); 4] = [
        (jaguar(), 512),
        (franklin(), 96),
        (xtp(), 40),
        (bluegene_gpfs(), 128),
    ];

    println!("§VI future work: adaptive IO beyond Jaguar/Lustre");
    println!("(128 MB/process, writers = 8x adaptive targets, base + interference)\n");
    let mut table = Table::new(vec![
        "machine", "env", "MPI GiB/s", "Adaptive GiB/s", "gain",
    ]);
    for (machine, targets) in &machines {
        let n = scaled(8 * targets, 64);
        for (env, interference) in [
            ("base", Interference::None),
            ("interference", Interference::paper_default()),
        ] {
            let rows = compare_at_scale(
                machine,
                n,
                128 * MIB,
                *targets,
                &interference,
                n_samples,
                seed + *targets as u64,
            );
            let mpi = rows[0].bandwidth.mean;
            let adaptive = rows[1].bandwidth.mean;
            table.row(vec![
                machine.name.clone(),
                env.to_string(),
                fmt_gibps(mpi),
                fmt_gibps(adaptive),
                format!("{:+.0}%", 100.0 * (adaptive / mpi - 1.0)),
            ]);
            log.row(minijson::json!({
                "experiment": "future-work",
                "machine": machine.name.clone(),
                "environment": env,
                "procs": n,
                "mpi_bps": mpi,
                "adaptive_bps": adaptive,
            }));
        }
    }
    println!("{}", table.render());

    // §V failure scenario: a few crippled targets.
    println!("§V slow-target scenario (2 targets at 10% capability, Jaguar):");
    let machine = jaguar();
    let n = scaled(4096, 128);
    let degraded = Interference::DegradedOsts {
        osts: vec![0, 1],
        factor: 0.1,
    };
    let mut t2 = Table::new(vec!["method", "avg GiB/s"]);
    for (name, method) in [
        ("MPI", Method::MpiIo { stripe_count: 160 }),
        (
            "Adaptive",
            Method::Adaptive {
                targets: 512,
                opts: AdaptiveOpts::default(),
            },
        ),
        ("Stagger (no shifting)", Method::Stagger { targets: 512 }),
    ] {
        let rs = workloads::campaign::sample_results(
            &machine,
            n,
            128 * MIB,
            &method,
            &degraded,
            n_samples,
            seed + 7000,
        );
        let s = iostats::Summary::of(
            &rs.iter().map(|r| r.aggregate_bandwidth()).collect::<Vec<_>>(),
        );
        t2.row(vec![name.to_string(), fmt_gibps(s.mean)]);
        log.row(minijson::json!({
            "experiment": "slow-targets",
            "method": name,
            "avg_bps": s.mean,
        }));
    }
    println!("{}", t2.render());
    log.flush();
}
