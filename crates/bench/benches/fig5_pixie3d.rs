//! **Figure 5 (a)(b)(c)** — Pixie3D IO Performance (§IV-A).
//!
//! The Pixie3D MHD IO kernel (eight double-precision 3-D arrays) at the
//! paper's three data models — small (32³ cubes, 2 MB/process), large
//! (128³, 128 MB/process), extra large (256³, 1 GB/process) — weak-scaled
//! over 512…16384 processes on the Jaguar preset. MPI-IO (one shared
//! file, 160-OST stripe limit) vs the adaptive method (512 targets), each
//! under normal conditions and with the paper's artificial interference
//! (three 1 GiB streamers on each of 8 targets).
//!
//! Paper shapes to reproduce:
//! * small: adaptive catches up with scale (~10 % better at ≥8192 base,
//!   ~35 % at 16384 under interference);
//! * large: adaptive consistently better, up to >350 % (base) / >430 %
//!   (interference);
//! * extra large: ~4.8× with 3.2× more targets; >300 % once process
//!   count exceeds target count.

use adios_core::Interference;
use iostats::Table;
use managed_io_bench::{base_seed, fmt_gibps, samples, scaled, ExperimentLog};
use simcore::units::GIB;
use storesim::params::jaguar;
use workloads::campaign::compare_at_scale;
use workloads::Pixie3dConfig;

fn main() {
    let machine = jaguar();
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("fig5");

    type Model = (&'static str, fn(usize) -> Pixie3dConfig);
    let models: [Model; 3] = [
        ("5(a) small 2 MB/proc", Pixie3dConfig::small),
        ("5(b) large 128 MB/proc", Pixie3dConfig::large),
        ("5(c) extra large 1 GB/proc", Pixie3dConfig::extra_large),
    ];
    let scales = [512usize, 1024, 2048, 4096, 8192, 16384];

    for (label, mk) in models {
        for (env, interference) in [
            ("base", Interference::None),
            ("interference", Interference::paper_default()),
        ] {
            println!("\nFigure {label} — {env} (MPI: 160-OST stripe; Adaptive: 512 targets)");
            let mut table = Table::new(vec![
                "procs",
                "method",
                "avg GiB/s",
                "min",
                "max",
                "adaptive writes",
            ]);
            let mut prev: Option<f64> = None;
            for &n in &scales {
                let n = scaled(n, 64);
                let cfg = mk(n);
                let rows = compare_at_scale(
                    &machine,
                    cfg.nprocs,
                    cfg.bytes_per_process(),
                    512,
                    &interference,
                    n_samples,
                    seed + n as u64,
                );
                let mpi = rows[0].bandwidth.mean;
                for r in &rows {
                    table.row(vec![
                        r.nprocs.to_string(),
                        r.method.to_string(),
                        fmt_gibps(r.bandwidth.mean),
                        fmt_gibps(r.bandwidth.min),
                        fmt_gibps(r.bandwidth.max),
                        format!("{:.0}", r.adaptive_writes),
                    ]);
                    log.row(minijson::json!({
                        "figure": label,
                        "environment": env,
                        "procs": r.nprocs,
                        "method": r.method,
                        "bytes_per_proc": cfg.bytes_per_process(),
                        "avg_bps": r.bandwidth.mean,
                        "min_bps": r.bandwidth.min,
                        "max_bps": r.bandwidth.max,
                        "adaptive_writes": r.adaptive_writes,
                        "samples": n_samples,
                    }));
                }
                let adaptive = rows[1].bandwidth.mean;
                let gain = 100.0 * (adaptive / mpi - 1.0);
                table.row(vec![
                    String::new(),
                    "  -> adaptive gain".to_string(),
                    format!("{gain:+.0}%"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                prev = Some(gain);
            }
            let _ = prev;
            println!("{}", table.render());
        }
    }
    println!(
        "\n(total output at 16384 procs, XL model: {} GiB = the paper's 16 TB per IO)",
        Pixie3dConfig::extra_large(16384).total_bytes() / GIB
    );
    log.flush();
}
