//! **Figure 7 (a)–(d)** — Standard Deviation of Write Time (§IV-C).
//!
//! For the four measured cases — Pixie3D small / large / extra large and
//! XGC1 — the per-writer write-time standard deviation of the adaptive
//! method vs MPI-IO at each scale.
//!
//! Paper shape to reproduce: "once the caches on the storage targets
//! start to be taxed, adaptive IO reduces variability", dramatically so
//! for the extra-large model (Fig. 7(c)).

use adios_core::Interference;
use iostats::Table;
use managed_io_bench::{base_seed, samples, scaled, ExperimentLog};
use storesim::params::jaguar;
use workloads::campaign::compare_at_scale;
use workloads::{Pixie3dConfig, Xgc1Config};

fn main() {
    let machine = jaguar();
    let n_samples = samples(5);
    let seed = base_seed();
    let mut log = ExperimentLog::new("fig7");

    type Case = (&'static str, Box<dyn Fn(usize) -> u64>);
    let cases: [Case; 4] = [
        (
            "7(a) Pixie3D small",
            Box::new(|n| Pixie3dConfig::small(n).bytes_per_process()),
        ),
        (
            "7(b) Pixie3D large",
            Box::new(|n| Pixie3dConfig::large(n).bytes_per_process()),
        ),
        (
            "7(c) Pixie3D extra large",
            Box::new(|n| Pixie3dConfig::extra_large(n).bytes_per_process()),
        ),
        (
            "7(d) XGC1",
            Box::new(|n| Xgc1Config::paper(n).bytes_per_process()),
        ),
    ];
    let scales = [512usize, 2048, 8192, 16384];

    for (label, bytes_of) in cases {
        println!("\nFigure {label} — std dev of per-writer write time (s)");
        let mut table = Table::new(vec!["procs", "MPI std(t)", "Adaptive std(t)", "reduction"]);
        for &n in &scales {
            let n = scaled(n, 64);
            let rows = compare_at_scale(
                &machine,
                n,
                bytes_of(n),
                512,
                &Interference::None,
                n_samples,
                seed + 17 * n as u64,
            );
            let mpi = rows[0].write_time_std;
            let adaptive = rows[1].write_time_std;
            table.row(vec![
                n.to_string(),
                format!("{mpi:.3}"),
                format!("{adaptive:.3}"),
                format!("{:+.0}%", 100.0 * (adaptive / mpi - 1.0)),
            ]);
            log.row(minijson::json!({
                "figure": label,
                "procs": n,
                "mpi_std_s": mpi,
                "adaptive_std_s": adaptive,
                "samples": n_samples,
            }));
        }
        println!("{}", table.render());
    }
    println!("(paper: adaptive reduces write-time variability once OST caches are taxed)");
    log.flush();
}
