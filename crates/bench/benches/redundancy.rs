//! **Tiered redundancy** — surviving destroyed data cheaper than
//! replication, measured: across destroyed-data fault scenarios the
//! erasure-coded policies (`Ec{8,2}`, `Ec{4,2}`) end every campaign
//! fully durable — zero unrepaired placement groups — while rewriting
//! strictly fewer repair bytes than 2× replication, at 1.25×/1.5×
//! storage overhead instead of 2×. Under a correlated two-target loss,
//! replication demonstrably loses whole placement groups where both
//! erasure geometries reconstruct everything. Results merge into
//! `BENCH_redundancy.json` at the workspace root, keyed by scenario and
//! engine variant. `MANAGED_IO_SMOKE=1` shrinks the seed sweep for CI.

use adios_core::redundancy::run_redundant;
use bpfmt::ec::RedundancyPolicy;
use iostats::{outcome_table, OutcomeRow, Summary};
use managed_io_bench::{base_seed, size_label, ExperimentLog};
use minijson::{json, Value};
use simcore::units::MIB;
use storesim::params::testbed;
use workloads::redundancy::{policy_ladder, redundancy_opts, RedundancyScenario};

/// Which engine the runs used (the shard plane sits above the engine,
/// so both variants must show the same win).
const VARIANT: &str = if cfg!(feature = "baseline") {
    "baseline"
} else {
    "optimized"
};

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_redundancy.json");

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

/// Merge `rows` into BENCH_redundancy.json: `{scenario: {variant: value}}`.
fn merge_into_artifact(rows: Vec<(String, Value)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    for (name, row) in rows {
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            pairs.retain(|(k, _)| k != VARIANT);
            pairs.push((VARIANT.to_string(), row));
        }
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

/// One (scenario, policy) cell of the matrix, accumulated over seeds.
#[derive(Default)]
struct Cell {
    stored: u64,
    rewritten: u64,
    reconstructed: u64,
    unrecoverable: u64,
    damaged: u64,
    total_bytes: u64,
    written_bytes: u64,
    lost_bytes: u64,
    elapsed: Vec<f64>,
    durable: bool,
}

fn main() {
    let mut machine = testbed();
    // Ec{8,2} spreads 10 shards; give the testbed enough distinct targets.
    machine.ost_count = 12;
    let nprocs = 32usize;
    let bytes = 8 * MIB;
    let seeds = if smoke() { 3 } else { 10 };
    let rank_bytes = vec![bytes; nprocs];
    let mut log = ExperimentLog::new("redundancy");
    let mut artifact: Vec<(String, Value)> = Vec::new();

    println!(
        "Tiered redundancy — {nprocs} procs x {} over {} OSTs, {seeds} seeds per cell\n",
        size_label(bytes),
        machine.ost_count
    );
    let mut rows: Vec<OutcomeRow> = Vec::new();
    // Repair traffic summed per policy over every faulted scenario and
    // seed: the headline comparison.
    let mut repair_total: Vec<(&str, u64)> = Vec::new();
    let mut rep2_correlated_unrecoverable = 0u64;

    for scenario in RedundancyScenario::matrix() {
        let script = scenario.script(machine.ost_count);
        let mut scenario_rows: Vec<(String, Value)> = Vec::new();
        for (pname, policy) in policy_ladder() {
            let opts = redundancy_opts(policy);
            let mut cell = Cell {
                durable: true,
                ..Cell::default()
            };
            for i in 0..seeds {
                let seed = base_seed() + i as u64;
                let report = run_redundant(&machine, &rank_bytes, &script, &opts, seed);
                cell.stored += report.bytes_stored;
                cell.rewritten += report.bytes_rewritten;
                cell.reconstructed += report.bytes_reconstructed;
                cell.unrecoverable += report.unrecoverable_pgs as u64;
                cell.damaged += report.damaged_pgs as u64;
                cell.total_bytes += report.outcome.total_bytes;
                cell.written_bytes += report.outcome.written_bytes;
                cell.lost_bytes += report.outcome.lost_bytes;
                cell.elapsed
                    .push(report.write_elapsed_secs + report.rebuild_elapsed_secs);
                cell.durable &= report.fully_durable();
            }
            let s = Summary::of(&cell.elapsed);
            rows.push(OutcomeRow {
                label: format!("{} / {pname}", scenario.name()),
                total_bytes: cell.total_bytes,
                written_bytes: cell.written_bytes,
                lost_bytes: cell.lost_bytes,
                corrupt_blocks: 0,
                repaired_blocks: cell.damaged as usize - cell.unrecoverable as usize,
                unrepaired_blocks: cell.unrecoverable as usize,
                rewritten_bytes: cell.rewritten,
                reconstructed_bytes: cell.reconstructed,
            });
            log.row(json!({
                "experiment": "redundancy-matrix",
                "scenario": scenario.name(),
                "policy": pname,
                "storage_overhead": policy.storage_overhead(),
                "stored_bytes": cell.stored,
                "rewritten_bytes": cell.rewritten,
                "reconstructed_bytes": cell.reconstructed,
                "damaged_pgs": cell.damaged,
                "unrecoverable_pgs": cell.unrecoverable,
                "durable": cell.durable,
                "mean_elapsed_s": s.mean,
            }));
            scenario_rows.push((
                pname.to_string(),
                json!({
                    "storage_overhead": policy.storage_overhead(),
                    "stored_bytes": cell.stored,
                    "rewritten_bytes": cell.rewritten,
                    "reconstructed_bytes": cell.reconstructed,
                    "damaged_pgs": cell.damaged,
                    "unrecoverable_pgs": cell.unrecoverable,
                    "durable": cell.durable,
                    "mean_elapsed_s": s.mean,
                }),
            ));

            // The acceptance gates, per cell.
            if matches!(policy, RedundancyPolicy::Ec { .. }) {
                assert!(
                    cell.durable && cell.unrecoverable == 0,
                    "{} / {pname}: an erasure-coded campaign left {} groups unrepaired",
                    scenario.name(),
                    cell.unrecoverable
                );
            }
            if scenario.is_faulted() {
                match repair_total.iter_mut().find(|(n, _)| *n == pname) {
                    Some((_, t)) => *t += cell.rewritten,
                    None => repair_total.push((pname, cell.rewritten)),
                }
                if scenario == RedundancyScenario::CorrelatedLoss && pname == "rep2" {
                    rep2_correlated_unrecoverable = cell.unrecoverable;
                }
            } else {
                assert_eq!(
                    cell.rewritten,
                    0,
                    "{} / {pname}: clean campaign rewrote bytes",
                    scenario.name()
                );
                // Clean storage cost matches the policy's advertised overhead.
                let logical: u64 = rank_bytes.iter().sum::<u64>() * seeds as u64;
                let ratio = cell.stored as f64 / logical as f64;
                assert!(
                    (ratio - policy.storage_overhead()).abs() < 0.01,
                    "{pname}: stored {ratio:.3}x vs advertised {:.3}x",
                    policy.storage_overhead()
                );
            }
        }
        artifact.push((
            scenario.name().to_string(),
            Value::Obj(scenario_rows),
        ));
    }

    println!("{}", outcome_table(&rows).render());

    // Headline gates across the whole matrix: every erasure geometry
    // repairs with strictly less traffic than 2x replication, and the
    // correlated loss that wipes replicated groups is survived by EC.
    let rep2 = repair_total
        .iter()
        .find(|(n, _)| *n == "rep2")
        .map(|(_, t)| *t)
        .expect("rep2 measured");
    assert!(rep2 > 0, "the fault matrix never exercised replication repair");
    for (pname, total) in &repair_total {
        if *pname == "rep2" {
            continue;
        }
        assert!(
            total < &rep2,
            "{pname}: EC repair traffic {total} not under replication's {rep2}"
        );
        println!(
            "{pname}: repair traffic {} vs rep2 {} ({:.0}% saved)",
            size_label(*total),
            size_label(rep2),
            100.0 * (1.0 - *total as f64 / rep2 as f64)
        );
    }
    assert!(
        rep2_correlated_unrecoverable > 0,
        "correlated loss should wipe some doubly-placed replicated groups"
    );
    println!(
        "correlated-loss: rep2 lost {rep2_correlated_unrecoverable} groups; ec8+2 and ec4+2 lost 0"
    );

    merge_into_artifact(artifact);
    log.flush();
}
