//! **Fault tolerance** — the robustness argument behind the paper's
//! adaptive method, measured: under storage-target failures, stalls,
//! brownouts, lossy control traffic and rank kills, the hardened
//! adaptive protocol keeps landing every byte (work-shifted to the
//! survivors) while the tuned MPI-IO baseline degrades to structured
//! partial failure. Prints a scenario x method matrix of wrap-up time,
//! written/lost bytes and completion status.

use adios_core::{
    run_with_faults, AdaptiveOpts, DataSpec, FaultConfig, Interference, Method, NetFaults, RunSpec,
};
use iostats::Table;
use managed_io_bench::{base_seed, size_label, ExperimentLog};
use simcore::units::MIB;
use storesim::fault::FailMode;
use storesim::params::testbed;
use storesim::FaultScript;

fn scenarios() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("no faults", FaultConfig::none()),
        (
            "brownout 0.1x on OST 0, 10 s",
            FaultConfig {
                storage: FaultScript::none().brownout(0.5, 0, 0.1, 10.0),
                ..Default::default()
            },
        ),
        (
            "OST 2 dead (error) at 1 s",
            FaultConfig {
                storage: FaultScript::none().fail_ost(1.0, 2, FailMode::Error, None),
                ..Default::default()
            },
        ),
        (
            "OST 3 stalled 1-20 s",
            FaultConfig {
                storage: FaultScript::none().fail_ost(1.0, 3, FailMode::Stall, Some(20.0)),
                ..Default::default()
            },
        ),
        (
            "lossy network (30% dup, 30% delay)",
            FaultConfig {
                network: Some(NetFaults {
                    dup_p: 0.3,
                    delay_p: 0.3,
                    delay_mean_secs: 0.05,
                }),
                ..Default::default()
            },
        ),
        (
            "sub-coordinator rank 4 killed at 1 s",
            FaultConfig {
                kills: vec![(1.0, 4)],
                ..Default::default()
            },
        ),
    ]
}

fn main() {
    let machine = testbed();
    let seed = base_seed();
    let nprocs = 32usize;
    let bytes = 64 * MIB;
    let targets = 8usize;
    let mut log = ExperimentLog::new("fault_tolerance");

    println!(
        "Fault tolerance matrix — {nprocs} procs x {} over {targets} targets, testbed, seed {seed}\n",
        size_label(bytes)
    );
    let mut table = Table::new(vec![
        "scenario", "method", "time (s)", "written", "lost", "shifted", "status",
    ]);

    for (name, faults) in scenarios() {
        for (mname, method) in [
            ("mpi-io", Method::MpiIo { stripe_count: targets }),
            (
                "adaptive",
                Method::Adaptive {
                    targets,
                    opts: AdaptiveOpts::default(),
                },
            ),
        ] {
            let out = run_with_faults(
                RunSpec {
                    machine: machine.clone(),
                    nprocs,
                    data: DataSpec::Uniform(bytes),
                    method,
                    interference: Interference::None,
                    seed,
                },
                faults.clone(),
            );
            let status = if out.outcome.complete {
                "complete".to_string()
            } else {
                format!("partial ({} errors)", out.errors.len())
            };
            table.row(vec![
                name.to_string(),
                mname.to_string(),
                format!("{:.2}", out.result.full_span),
                size_label(out.outcome.written_bytes),
                size_label(out.outcome.lost_bytes),
                format!("{}", out.result.adaptive_writes),
                status,
            ]);
            log.row(minijson::json!({
                "experiment": "fault-matrix",
                "scenario": name,
                "method": mname,
                "full_span_s": out.result.full_span,
                "written_bytes": out.outcome.written_bytes,
                "lost_bytes": out.outcome.lost_bytes,
                "adaptive_writes": out.result.adaptive_writes,
                "complete": out.outcome.complete,
                "errors": out.errors.len(),
            }));
        }
    }
    println!("{}", table.render());
    println!(
        "Every adaptive row lands all bytes; MPI-IO loses whatever sat on a\n\
         dead target because the baseline has no work shifting to fall back on."
    );
    log.flush();
}
