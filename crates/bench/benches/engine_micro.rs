//! Microbenchmarks of the simulation engine's hot paths: event-queue
//! schedule/cancel/pop churn, OST fluid-model settling, storage-system
//! replan storms, a complete adaptive run, and a Fig. 7-style multi-seed
//! sweep. These guard the *wall-clock* cost of regenerating the paper's
//! figures (a full 16384-rank sample must stay well under a second).
//!
//! Timing is hand-rolled (`std::time::Instant`, min-of-N after warmup) —
//! the workspace builds offline with no criterion. Results merge into
//! `BENCH_engine.json` at the workspace root, keyed by bench name and
//! engine variant, so running twice gives before/after in one artifact:
//!
//! ```text
//! cargo bench --bench engine_micro                      # optimized engine
//! cargo bench --bench engine_micro --features baseline  # pre-optimization engine
//! ```
//!
//! The queue microbenchmarks compare both implementations inside a
//! single binary (the baseline queue module is always compiled); the
//! system-level benchmarks report under whichever engine the `baseline`
//! feature selected.

use std::hint::black_box;
use std::time::Instant;

use adios_core::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io_bench::par_replicates;
use minijson::{json, Value};
use simcore::queue::{baseline::BaselineEventQueue, slab::SlabEventQueue};
use simcore::units::MIB;
use simcore::{Rng, SimTime};
use storesim::layout::OstId;
use storesim::ost::{OpKind, Ost, RequestId};
use storesim::params::{jaguar, testbed};
use storesim::StorageSystem;

/// Which engine the system-level benchmarks ran against.
const VARIANT: &str = if cfg!(feature = "baseline") {
    "baseline"
} else {
    "optimized"
};

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

struct Timing {
    iters: usize,
    min_s: f64,
    mean_s: f64,
}

/// Warm up once, then time `iters` runs of `f`; keep min and mean.
fn time_n<F: FnMut() -> u64>(iters: usize, mut f: F) -> Timing {
    black_box(f());
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    Timing {
        iters,
        min_s: min,
        mean_s: total / iters as f64,
    }
}

/// The replan-storm access pattern both queue implementations must serve.
/// Processor-sharing servers re-plan (cancel + reschedule) the predicted
/// completion of *every* in-flight stream each time their load changes,
/// so cancellations vastly outnumber pops: each round below cancels and
/// reschedules all 10k pending wakes, then fires a few completions and
/// polls the horizon. Generated identically for both implementations via
/// the same seeded RNG.
macro_rules! queue_churn {
    ($name:ident, $queue:ty) => {
        fn $name() -> u64 {
            let mut rng = Rng::new(7);
            let mut q: $queue = <$queue>::new();
            let mut live = Vec::with_capacity(10_000);
            let mut sum = 0u64;
            for i in 0..10_000u64 {
                live.push(q.schedule(SimTime::from_nanos(1 + rng.below(1 << 20)), i));
            }
            for _round in 0..25 {
                // The storm: every pending wake is cancelled and replanned
                // (tokens of already-fired events cancel as no-ops, exactly
                // as in the simulator).
                for k in 0..live.len() {
                    q.cancel(live[k]);
                    let t = q.now() + simcore::SimDuration::from_nanos(1 + rng.below(1 << 20));
                    live[k] = q.schedule(t, k as u64);
                }
                // A handful of completions actually fire between storms.
                for _ in 0..live.len() / 16 {
                    if let Some((_, v)) = q.pop() {
                        sum = sum.wrapping_add(v);
                    }
                }
                sum = sum.wrapping_add(q.peek_time().map_or(0, |t| t.as_nanos() as u64));
            }
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        }
    };
}

queue_churn!(churn_slab, SlabEventQueue<u64>);
queue_churn!(churn_baseline, BaselineEventQueue<u64>);

fn ost_settle() -> u64 {
    let mut ost = Ost::new(testbed().ost);
    for i in 0..32u64 {
        ost.submit(SimTime::ZERO, RequestId(i), 16 * MIB, OpKind::WriteDirect);
    }
    let mut done = 0u64;
    while let Some(at) = ost.next_completion() {
        done += ost.advance(at).len() as u64;
    }
    done
}

fn storage_512_writes() -> u64 {
    let mut sys = StorageSystem::new(jaguar(), 3);
    for i in 0..512u64 {
        sys.submit_ost_write(SimTime::ZERO, OstId((i % 512) as usize), 8 * MIB, i);
    }
    sys.run_until_quiet(SimTime::from_secs_f64(1e5)).len() as u64
}

fn adaptive_run_512() -> u64 {
    let out = run(RunSpec {
        machine: jaguar(),
        nprocs: 512,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 512,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 11,
    });
    out.result.records.len() as u64
}

/// Fig. 7-style sweep: independent seeds of the same adaptive workload,
/// fanned out through the campaign-level replicate runner.
fn fig7_style_sweep() -> u64 {
    let seeds: Vec<u64> = (0..6).collect();
    let results = par_replicates(seeds, |seed| {
        run(RunSpec {
            machine: jaguar(),
            nprocs: 256,
            data: DataSpec::Uniform(8 * MIB),
            method: Method::Adaptive {
                targets: 256,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::paper_default(),
            seed,
        })
        .result
    });
    results.iter().map(|r| r.records.len() as u64).sum()
}

/// Merge `rows` into BENCH_engine.json: `{bench: {variant: timing}}` plus
/// recomputed `speedups` (baseline min / optimized min) where both
/// variants are present.
fn merge_into_artifact(rows: Vec<(String, &str, Timing)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    entries.retain(|(k, _)| k != "speedups");
    for (name, variant, t) in rows {
        let row = json!({
            "iters": t.iters,
            "min_s": t.min_s,
            "mean_s": t.mean_s,
        });
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            pairs.retain(|(k, _)| k != variant);
            pairs.push((variant.to_string(), row));
        }
    }
    let mut speedups = Vec::new();
    for (name, v) in entries.iter() {
        let base = v.get("baseline").and_then(|b| b.get("min_s")).and_then(Value::as_f64);
        let opt = v.get("optimized").and_then(|o| o.get("min_s")).and_then(Value::as_f64);
        if let (Some(b), Some(o)) = (base, opt) {
            if o > 0.0 {
                speedups.push((name.clone(), Value::Num(b / o)));
            }
        }
    }
    if !speedups.is_empty() {
        entries.push(("speedups".to_string(), Value::Obj(speedups)));
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

fn main() {
    println!("engine_micro — variant: {VARIANT}\n");
    let mut rows: Vec<(String, &str, Timing)> = Vec::new();
    let mut report = |name: &str, variant: &'static str, t: Timing| {
        println!(
            "{name:<34} [{variant:<9}] min {:>10.3} ms   mean {:>10.3} ms   ({} iters)",
            t.min_s * 1e3,
            t.mean_s * 1e3,
            t.iters
        );
        rows.push((name.to_string(), variant, t));
    };

    // Queue churn: both implementations, one binary — the tentpole's
    // schedule/cancel/pop microbenchmark.
    report("queue_churn_10k", "optimized", time_n(10, churn_slab));
    report("queue_churn_10k", "baseline", time_n(10, churn_baseline));

    // System-level paths: reported under the compiled engine variant.
    report("ost_32_stream_drain", VARIANT, time_n(10, ost_settle));
    report("storage_512_writes_jaguar", VARIANT, time_n(5, storage_512_writes));
    report("adaptive_run_512_ranks", VARIANT, time_n(5, adaptive_run_512));
    report("fig7_sweep_6_seeds_256_ranks", VARIANT, time_n(3, fig7_style_sweep));

    merge_into_artifact(rows);
    println!("\nresults merged into {BENCH_PATH}");
}
