//! Criterion microbenchmarks of the simulation engine's hot paths: event
//! queue throughput, OST fluid-model settling, and a complete small
//! adaptive run. These guard the *wall-clock* cost of regenerating the
//! paper's figures (a full 16384-rank sample must stay well under a
//! second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use adios_core::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use simcore::units::MIB;
use simcore::{EventQueue, Rng, SimTime};
use storesim::layout::OstId;
use storesim::ost::{OpKind, Ost, RequestId};
use storesim::params::{jaguar, testbed};
use storesim::StorageSystem;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter_batched(
            || Rng::new(7),
            |mut rng| {
                let mut q = EventQueue::new();
                for i in 0..10_000u64 {
                    q.schedule(SimTime::from_nanos(rng.below(1_000_000)), i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ost_settle(c: &mut Criterion) {
    c.bench_function("ost_32_stream_drain", |b| {
        b.iter(|| {
            let mut ost = Ost::new(testbed().ost);
            for i in 0..32u64 {
                ost.submit(SimTime::ZERO, RequestId(i), 16 * MIB, OpKind::WriteDirect);
            }
            let mut done = 0;
            while let Some(at) = ost.next_completion() {
                done += ost.advance(at).len();
            }
            black_box(done)
        })
    });
}

fn bench_storage_system(c: &mut Criterion) {
    c.bench_function("storage_512_writes_jaguar", |b| {
        b.iter(|| {
            let mut sys = StorageSystem::new(jaguar(), 3);
            for i in 0..512u64 {
                sys.submit_ost_write(
                    SimTime::ZERO,
                    OstId((i % 512) as usize),
                    8 * MIB,
                    i,
                );
            }
            let done = sys.run_until_quiet(SimTime::from_secs_f64(1e5));
            black_box(done.len())
        })
    });
}

fn bench_adaptive_run(c: &mut Criterion) {
    c.bench_function("adaptive_run_512_ranks", |b| {
        b.iter(|| {
            let out = run(RunSpec {
                machine: jaguar(),
                nprocs: 512,
                data: DataSpec::Uniform(8 * MIB),
                method: Method::Adaptive {
                    targets: 512,
                    opts: AdaptiveOpts::default(),
                },
                interference: Interference::None,
                seed: 11,
            });
            black_box(out.result.records.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_ost_settle, bench_storage_system, bench_adaptive_run
}
criterion_main!(benches);
