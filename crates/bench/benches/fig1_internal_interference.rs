//! **Figure 1 (a) and (b)** — Illustration of the Internal Interference
//! Effect (paper §II-1).
//!
//! IOR on Jaguar/Lustre, POSIX-IO, one file per writer, writers split
//! evenly over 512 OSTs, weak scaling: writers 512…16384 ×
//! per-writer sizes 1 MB…1024 MB, 40 samples per bar in the paper
//! (`MANAGED_IO_SAMPLES` to change ours). Prints:
//!
//! * Fig 1(a): aggregate write bandwidth (avg, min, max error bars);
//! * Fig 1(b): average per-writer bandwidth at each scale;
//! * the §II-1 XTP note: <5 % degradation from 512→1024 writers for
//!   512 MB / 1 GB sizes on PanFS.
//!
//! Paper shapes to reproduce: per-writer bandwidth falls monotonically
//! with writer count; aggregate bandwidth rises then *declines* past
//! ~4 writers/OST for ≥64 MB sizes (16-28 % loss 8192→16384 at ≥128 MB);
//! the cache-friendly 1 MB series does not collapse.

use adios_core::Interference;
use iostats::{Summary, Table};
use managed_io_bench::{base_seed, fmt_gibps, fmt_mibps, samples, scaled, size_label, ExperimentLog};
use simcore::units::{GIB, MIB};
use storesim::params::{jaguar, xtp};
use workloads::ior::{aggregate_bandwidths, mean_per_writer_bandwidths};
use workloads::IorConfig;

fn main() {
    let machine = jaguar();
    let n_samples = samples(10);
    let seed = base_seed();
    let mut log = ExperimentLog::new("fig1");

    let sizes: [u64; 6] = [MIB, 8 * MIB, 64 * MIB, 128 * MIB, 512 * MIB, GIB];
    let writer_counts: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];

    println!("Figure 1(a): Scaling of Aggregate Write Bandwidth on Jaguar/Lustre");
    println!("(IOR POSIX, file-per-process, 512 OSTs, {n_samples} samples)\n");
    let mut fig1a = Table::new(vec!["size", "writers", "avg GiB/s", "min", "max"]);
    let mut fig1b = Table::new(vec!["size", "writers", "avg per-writer MiB/s"]);

    for &size in &sizes {
        for &writers in &writer_counts {
            let writers = scaled(writers, 64);
            let cfg = IorConfig {
                writers,
                bytes_per_writer: size,
                osts: 512,
            };
            let rs = cfg.run_samples(&machine, &Interference::None, n_samples, seed);
            let agg = Summary::of(&aggregate_bandwidths(&rs));
            let per = Summary::of(&mean_per_writer_bandwidths(&rs));
            fig1a.row(vec![
                size_label(size),
                writers.to_string(),
                fmt_gibps(agg.mean),
                fmt_gibps(agg.min),
                fmt_gibps(agg.max),
            ]);
            fig1b.row(vec![
                size_label(size),
                writers.to_string(),
                fmt_mibps(per.mean),
            ]);
            log.row(minijson::json!({
                "figure": "1",
                "machine": machine.name.clone(),
                "size_bytes": size,
                "writers": writers,
                "agg_mean_bps": agg.mean,
                "agg_min_bps": agg.min,
                "agg_max_bps": agg.max,
                "per_writer_mean_bps": per.mean,
                "samples": n_samples,
            }));
        }
    }
    println!("{}", fig1a.render());
    println!("Figure 1(b): Scaling of Per-Writer Write Bandwidth on Jaguar/Lustre\n");
    println!("{}", fig1b.render());

    // §II-1 XTP note: minimal internal interference on PanFS.
    println!("XTP/PanFS internal-interference check (§II-1):");
    let mut xtp_table = Table::new(vec!["size", "writers", "agg GiB/s", "per-writer MiB/s"]);
    let xtp_machine = xtp();
    for &size in &[512 * MIB, GIB] {
        for &writers in &[512usize, 1024] {
            let cfg = IorConfig {
                writers,
                bytes_per_writer: size,
                osts: 40,
            };
            let rs = cfg.run_samples(&xtp_machine, &Interference::None, n_samples.min(5), seed + 77);
            let agg = Summary::of(&aggregate_bandwidths(&rs));
            let per = Summary::of(&mean_per_writer_bandwidths(&rs));
            xtp_table.row(vec![
                size_label(size),
                writers.to_string(),
                fmt_gibps(agg.mean),
                fmt_mibps(per.mean),
            ]);
            log.row(minijson::json!({
                "figure": "1-xtp",
                "machine": xtp_machine.name.clone(),
                "size_bytes": size,
                "writers": writers,
                "agg_mean_bps": agg.mean,
                "per_writer_mean_bps": per.mean,
            }));
        }
    }
    println!("{}", xtp_table.render());
    println!("(paper §II-1: <5 % write-bandwidth reduction scaling 512 -> 1024 writers on XTP)");
    log.flush();
}
