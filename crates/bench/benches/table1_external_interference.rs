//! **Table I** — IO Performance Variability due to External Interference —
//! and **Figure 2** — histograms of the same bandwidth samples (§II-2).
//!
//! Hourly-style IOR probes (POSIX, one file per writer, one writer per
//! storage target):
//!
//! * Jaguar — 512 writers on the production-noisy preset (the paper used
//!   469 hourly samples);
//! * Franklin — 80 writers (NERSC's monitoring configuration);
//! * XTP with a second competing IOR job;
//! * XTP quiet.
//!
//! Paper bands to reproduce: coefficient of variation ("covariance")
//! 40–60 % on the busy production systems, ~43 % on XTP with the
//! competing job, small without it.

use adios_core::Interference;
use iostats::{Histogram, Summary, Table};
use managed_io_bench::{base_seed, fmt_mibps, samples, ExperimentLog};
use simcore::units::MIB;
use storesim::params::{franklin, jaguar, xtp, xtp_with_competing_ior, MachineConfig};
use workloads::ior::aggregate_bandwidths;
use workloads::IorConfig;

struct Case {
    machine: MachineConfig,
    writers: usize,
    osts: usize,
    samples: usize,
}

fn main() {
    let n = samples(60);
    let seed = base_seed();
    let mut log = ExperimentLog::new("table1");

    let cases = [
        Case {
            machine: jaguar(),
            writers: 512,
            osts: 512,
            samples: n.max(40), // the paper used 469 Jaguar samples
        },
        Case {
            machine: franklin(),
            writers: 80,
            osts: 80,
            samples: n,
        },
        Case {
            machine: xtp_with_competing_ior(),
            writers: 512,
            osts: 40,
            samples: n,
        },
        Case {
            machine: xtp(),
            writers: 512,
            osts: 40,
            samples: n,
        },
    ];

    println!("Table I: IO Performance Variability due to External Interference");
    println!("(IOR POSIX, 128 MB per writer; 'covariance' = coefficient of variation)\n");
    let mut table = Table::new(vec![
        "Machine",
        "Samples",
        "Avg IO BW (MiB/s)",
        "Std Dev (MiB/s)",
        "Covariance",
    ]);
    let mut histograms = Vec::new();

    for case in &cases {
        let cfg = IorConfig {
            writers: case.writers,
            bytes_per_writer: 128 * MIB,
            osts: case.osts,
        };
        let rs = cfg.run_samples(&case.machine, &Interference::None, case.samples, seed);
        let bws = aggregate_bandwidths(&rs);
        let s = Summary::of(&bws);
        table.row(vec![
            case.machine.name.clone(),
            s.n.to_string(),
            fmt_mibps(s.mean),
            fmt_mibps(s.std_dev),
            format!("{:.1}%", s.cv() * 100.0),
        ]);
        log.row(minijson::json!({
            "table": "I",
            "machine": case.machine.name.clone(),
            "samples": s.n,
            "avg_bps": s.mean,
            "std_bps": s.std_dev,
            "cv": s.cv(),
        }));
        let mibs: Vec<f64> = bws.iter().map(|b| b / MIB as f64).collect();
        histograms.push((case.machine.name.clone(), Histogram::of(&mibs, 12)));
    }
    println!("{}", table.render());
    println!("(paper: Jaguar/Franklin 40-60 %, XTP with Int. ~43 %, XTP quiet small)\n");

    println!("Figure 2: IO bandwidth histograms (MiB/s)");
    for (name, h) in histograms {
        println!("\n--- {name} ---");
        print!("{}", h.render(36));
    }
    log.flush();
}
