//! Fleet sweep benchmark: the end-to-end payoff of the work-stealing
//! sweep executor, per-worker scratch arenas and streaming statistics.
//!
//! The workload is the paper's replicate-campaign shape at fleet scale: a
//! 1000-seed Pixie3D-small sweep (128 writers, adaptive method) on the
//! full 672-OST Jaguar preset. Two executions are timed:
//!
//! * **collect** — the previous campaign path: fan the seeds out, collect
//!   a `Vec<RunOutput>` in seed order, fold statistics afterwards. Every
//!   seed rebuilds the 672-OST storage system from scratch and every
//!   result is materialized.
//! * **streaming** — the fleet sweep engine: work-stealing seed claims,
//!   per-worker reset-and-reuse scratch arenas, per-worker `SweepSink`s
//!   merged at the end. Peak memory is flat in the seed count.
//!
//! Determinism is asserted inline: the streaming report must be
//! byte-identical at 1, 2 and 8 threads — including under a storage
//! fault script — and equal to the collect-then-fold reference.
//!
//! A peak-tracking global allocator reports the high-water heap mark of a
//! quarter-length and a full-length streaming sweep: flat-memory
//! aggregation means the two peaks are close, while the collect path's
//! peak grows with the seed count.
//!
//! Results merge into `BENCH_sweep.json` at the workspace root, keyed by
//! bench name and engine variant (`--features baseline` for the reference
//! event core). `MANAGED_IO_SMOKE=1` shrinks the sweep for CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use adios_core::fault::FaultConfig;
use managed_io_bench::base_seed;
use minijson::{json, Value};
use storesim::fault::FaultScript;
use workloads::ScaleCampaign;

/// Which engine the sweep ran against.
const VARIANT: &str = if cfg!(feature = "baseline") {
    "baseline"
} else {
    "optimized"
};

/// Artifact lives at the workspace root regardless of cargo's CWD.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");

/// Heap high-water tracking: current live bytes and the peak since the
/// last [`reset_peak`] call.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_mib() -> f64 {
    PEAK.load(Ordering::Relaxed) as f64 / (1 << 20) as f64
}

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

/// Merge `rows` into BENCH_sweep.json: `{bench: {variant: value}}`.
fn merge_into_artifact(rows: Vec<(String, Value)>) {
    let mut root = managed_io_bench::load_artifact(BENCH_PATH);
    let Value::Obj(entries) = &mut root else {
        return;
    };
    for (name, row) in rows {
        let by_variant = match entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => {
                entries.push((name.clone(), Value::Obj(Vec::new())));
                &mut entries.last_mut().unwrap().1
            }
        };
        if let Value::Obj(pairs) = by_variant {
            pairs.retain(|(k, _)| k != VARIANT);
            pairs.push((VARIANT.to_string(), row));
        }
    }
    managed_io_bench::store_artifact(BENCH_PATH, &root);
}

fn main() {
    // The acceptance race is "at 8 threads" for both paths; the collect
    // path reads its thread count from the environment.
    std::env::set_var("MANAGED_IO_THREADS", "8");
    let smoke = smoke();
    let seeds_n: u64 = if smoke { 48 } else { 1000 };
    let campaign = ScaleCampaign::pixie3d_small(128);
    let (_, method) = campaign.methods()[1].clone();
    let base = campaign.sweep_base(method);
    let seeds: Vec<u64> = (0..seeds_n).map(|i| base_seed() + i).collect();
    let no_faults = FaultConfig::none();
    println!(
        "fleet_sweep — variant: {VARIANT}, smoke: {smoke}: {} seeds of {} ({} writers, {} OSTs)\n",
        seeds.len(),
        campaign.name,
        campaign.nprocs,
        campaign.machine.ost_count,
    );

    // --- Determinism gate: byte-identical reports at 1/2/8 threads, ---
    // --- clean and faulted, and equal to collect-then-fold.         ---
    let det_seeds: Vec<u64> = seeds.iter().copied().take(if smoke { 12 } else { 40 }).collect();
    let faulted = FaultConfig {
        storage: FaultScript::none()
            .brownout(0.5, 3, 0.4, 4.0)
            .silent_corruption(0.0, 1, None, 0.3),
        ..Default::default()
    };
    for (label, faults) in [("clean", &no_faults), ("faulted", &faulted)] {
        let mut reference = base.sweep_sink();
        base.run_seed_sweep_into_threads(1, &det_seeds, faults, &mut reference);
        let want = reference.report().to_string();
        for nt in [2usize, 8] {
            let mut sink = base.sweep_sink();
            base.run_seed_sweep_into_threads(nt, &det_seeds, faults, &mut sink);
            assert_eq!(
                sink.report().to_string(),
                want,
                "{label}: streaming sweep diverged at {nt} threads"
            );
        }
        if faults.is_empty() {
            let mut collect = base.sweep_sink();
            for (out, &seed) in base.run_seed_sweep(&det_seeds).iter().zip(&det_seeds) {
                collect.add_sample(&out.sweep_sample(seed));
            }
            assert_eq!(
                collect.report().to_string(),
                want,
                "collect-then-fold disagrees with streaming sweep"
            );
        }
        println!("determinism [{label}]: 1/2/8-thread reports byte-identical");
    }

    // --- Peak-memory flatness: quarter sweep vs full sweep. ---
    let quarter: Vec<u64> = seeds.iter().copied().take((seeds.len() / 4).max(4)).collect();
    reset_peak();
    let mut sink = base.sweep_sink();
    base.run_seed_sweep_into_threads(8, &quarter, &no_faults, &mut sink);
    black_box(sink.samples());
    let peak_quarter = peak_mib();
    reset_peak();
    let mut sink = base.sweep_sink();
    base.run_seed_sweep_into_threads(8, &seeds, &no_faults, &mut sink);
    black_box(sink.samples());
    let peak_full = peak_mib();
    println!(
        "\npeak heap: {peak_quarter:.1} MiB over {} seeds vs {peak_full:.1} MiB over {} seeds",
        quarter.len(),
        seeds.len()
    );
    assert!(
        peak_full <= peak_quarter * 1.5 + 8.0,
        "streaming sweep peak memory grew with seed count \
         ({peak_quarter:.1} MiB @ {} seeds -> {peak_full:.1} MiB @ {} seeds)",
        quarter.len(),
        seeds.len()
    );

    // --- The race: collect path vs fleet sweep engine, 8 threads. ---
    // Warm once, then keep the min over `iters` timed runs (scale.rs
    // idiom).
    let time_n = |iters: usize, f: &mut dyn FnMut() -> u64| {
        assert_eq!(black_box(f()), seeds.len() as u64);
        let mut min = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            min = min.min(t0.elapsed().as_secs_f64());
        }
        min
    };
    let iters = if smoke { 1 } else { 3 };
    let collect_min = time_n(iters, &mut || {
        let outs = base.run_seed_sweep(&seeds);
        let mut sink = base.sweep_sink();
        for (out, &seed) in outs.iter().zip(&seeds) {
            sink.add_sample(&out.sweep_sample(seed));
        }
        sink.samples()
    });
    let mut streaming_report = String::new();
    let streaming_min = time_n(iters, &mut || {
        let mut sink = base.sweep_sink();
        base.run_seed_sweep_into_threads(8, &seeds, &no_faults, &mut sink);
        streaming_report = sink.report().to_string();
        sink.samples()
    });
    let speedup = collect_min / streaming_min;
    println!(
        "collect   min {:.3} s\nstreaming min {:.3} s\nspeedup {speedup:.2}x",
        collect_min, streaming_min
    );

    merge_into_artifact(vec![(
        "fleet_sweep_pixie3d_small_128".to_string(),
        json!({
            "seeds": seeds.len(),
            "collect_min_s": collect_min,
            "streaming_min_s": streaming_min,
            "speedup_vs_collect": speedup,
            "peak_quarter_mib": peak_quarter,
            "peak_full_mib": peak_full,
            "report": Value::parse(&streaming_report).unwrap_or(Value::Null),
        }),
    )]);
    println!("\nresults merged into {BENCH_PATH}");
}
