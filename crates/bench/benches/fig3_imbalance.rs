//! **Figure 3** — Illustration of Imbalanced Concurrent Writers (§II-2).
//!
//! Two external-interference IOR probes taken minutes apart on Jaguar
//! (128 MB per process): the paper's Test 1 shows an imbalance factor
//! (slowest / fastest per-writer write time) of 3.44; Test 2, three
//! minutes later, only 1.18 — external interference is transient. Across
//! all of the paper's tests the average imbalance factor is 3.79.
//!
//! This harness scans consecutive probes for the most/least imbalanced
//! pair, prints their per-writer time distributions, and reports the mean
//! imbalance across the whole scan.

use adios_core::Interference;
use iostats::{imbalance_factor, quantile, Table};
use managed_io_bench::{base_seed, samples, ExperimentLog};
use simcore::units::MIB;
use storesim::params::jaguar;
use workloads::IorConfig;

fn main() {
    let machine = jaguar();
    let n = samples(40);
    let seed = base_seed();
    let mut log = ExperimentLog::new("fig3");

    let cfg = IorConfig {
        writers: 512,
        bytes_per_writer: 128 * MIB,
        osts: 512,
    };
    let rs = cfg.run_samples(&machine, &Interference::None, n, seed);
    let factors: Vec<f64> = rs.iter().map(|r| imbalance_factor(&r.per_writer_times())).collect();
    let mean = factors.iter().sum::<f64>() / factors.len() as f64;

    let (hi_idx, _) = factors
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty");
    let (lo_idx, _) = factors
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty");

    println!("Figure 3: Imbalanced Concurrent Writers (512 writers, 128 MB each, Jaguar)\n");
    let mut table = Table::new(vec![
        "test", "imbalance", "min t (s)", "p25", "median", "p75", "max t (s)",
    ]);
    for (label, idx) in [("Test 1 (most imbalanced)", hi_idx), ("Test 2 (least imbalanced)", lo_idx)] {
        let times = rs[idx].per_writer_times();
        table.row(vec![
            label.to_string(),
            format!("{:.2}", factors[idx]),
            format!("{:.2}", quantile(&times, 0.0)),
            format!("{:.2}", quantile(&times, 0.25)),
            format!("{:.2}", quantile(&times, 0.5)),
            format!("{:.2}", quantile(&times, 0.75)),
            format!("{:.2}", quantile(&times, 1.0)),
        ]);
        log.row(minijson::json!({
            "figure": "3",
            "test": label,
            "imbalance": factors[idx],
            "per_writer_times_s": times,
        }));
    }
    println!("{}", table.render());
    println!("mean imbalance factor over {n} probes: {mean:.2}");
    println!("(paper: Test 1 = 3.44, Test 2 = 1.18 three minutes later; overall average 3.79)");
    log.row(minijson::json!({"figure": "3", "mean_imbalance": mean, "samples": n}));
    log.flush();
}
