//! **In-run sharding** — deterministic parallel OST advancement inside a
//! single campaign, measured two ways and byte-checked on every rep:
//!
//!  1. `storage_inrun`: a storage-only campaign driven with coarse
//!     advance windows (the batch/sweep shape). Macro-step windows span
//!     many lane events across many shards, so shard draining
//!     parallelizes; this is where the speedup lives.
//!  2. `coupled_inrun`: a full cluster-coupled run (conservative
//!     co-simulation). The driver advances to the very next event, so
//!     windows hold one lane event and sharding can only cost — recorded
//!     honestly for the Amdahl ledger in EXPERIMENTS.md.
//!
//! Results merge keep-min into `BENCH_inrun.json` at the workspace root,
//! keyed `{bench: {variant: {shards<N>: ...}}}`, stamped with
//! `{threads, engine, git_commit}` provenance (mismatched stamps discard
//! the recorded rows). The ≥1.5× gate at 8 shard threads is enforced
//! only on hosts with ≥8 cores and outside `MANAGED_IO_SMOKE=1`.

use std::time::Instant;

use adios_core::fault::FaultConfig;
use adios_core::{AdaptiveOpts, DataSpec, Interference, Method, RunBase, RunScratch, RunSpec};
use managed_io_bench::{base_seed, engine_variant, load_artifact, store_artifact};
use minijson::{json, Value};
use simcore::units::MIB;
use simcore::{Rng, SimTime};
use storesim::params::franklin;
use storesim::{FileId, OstId, StorageSystem, StripeSpec};

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inrun.json");
const SHARDS: [usize; 3] = [1, 2, 8];

fn smoke() -> bool {
    std::env::var("MANAGED_IO_SMOKE").is_ok_and(|v| v == "1")
}

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// FNV-1a over the full completion stream: cheap byte-identity witness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The storage-only campaign: randomized submissions against a loaded
/// Franklin-sized system, advanced in coarse windows. Identical external
/// history at every shard count; returns (wall seconds, stream hash,
/// profile counters).
fn storage_campaign(ops_n: usize, shards: usize) -> (f64, Fnv, Value) {
    let horizon = 40.0;
    let mut rng = Rng::new(0x1218_2010);
    let mut times: Vec<f64> = (0..ops_n).map(|_| rng.uniform(0.05, horizon)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ops: Vec<(f64, u64, u64)> = times
        .into_iter()
        .map(|at| (at, rng.next_u64(), rng.next_u64()))
        .collect();

    let started = Instant::now();
    let mut sys = StorageSystem::new(franklin(), 0x2010);
    sys.set_shard_threads(shards);
    sys.enable_profiling();
    let n = sys.config().ost_count;
    let files: Vec<FileId> = (0..4)
        .map(|i| {
            sys.fs_mut().create(
                format!("inrun/{i}"),
                StripeSpec::Pinned((0..16).map(|j| OstId((i * 16 + j * 5) % n)).collect()),
            )
        })
        .collect();
    for i in 0..24 {
        sys.add_background_stream(SimTime::ZERO, OstId((i * 7 + 1) % n), 64 * MIB);
    }
    for i in 0..8 {
        sys.add_bursty_stream(SimTime::ZERO, OstId((i * 13 + 3) % n), 16 * MIB, 0.3);
    }
    let mut out = Vec::new();
    let mut hash = Fnv::new();
    let harvest = |out: &mut Vec<storesim::StorageCompletion>, hash: &mut Fnv| {
        for c in out.drain(..) {
            hash.mix(c.tag);
            hash.mix(c.bytes);
            hash.mix(c.submitted.as_nanos());
            hash.mix(c.finished.as_nanos());
            hash.mix(c.error as u64);
        }
    };
    for (i, &(at, a, b)) in ops.iter().enumerate() {
        sys.advance_into(t(at), &mut out);
        harvest(&mut out, &mut hash);
        let tag = i as u64;
        match a % 4 {
            0 => {
                let f = files[(b % files.len() as u64) as usize];
                sys.submit_file_write(t(at), f, (b % 64) * MIB, (1 + a % 16) * MIB, tag);
            }
            1 => {
                let f = files[(b % files.len() as u64) as usize];
                sys.submit_file_read(t(at), f, (b % 64) * MIB, (1 + a % 16) * MIB, tag);
            }
            _ => {
                sys.submit_ost_write(t(at), OstId((a % n as u64) as usize), (1 + b % 24) * MIB, tag);
            }
        }
    }
    sys.advance_into(t(horizon + 10.0), &mut out);
    harvest(&mut out, &mut hash);
    let wall = started.elapsed().as_secs_f64();
    let p = sys.profile().expect("profiling enabled");
    let prof = json!({
        "windows": p.windows,
        "parallel_windows": p.parallel_windows,
        "shard_events": p.shard_events,
        "global_events": p.global_events,
        "ost_advance_s": p.ost_advance_s,
        "harvest_merge_s": p.harvest_merge_s,
    });
    (wall, hash, prof)
}

/// The cluster-coupled campaign at a given shard count: same RunBase,
/// explicit per-run scratch. Returns (wall seconds, artifact hash).
fn coupled_campaign(base: &RunBase, seeds: &[u64], shards: usize) -> (f64, Fnv) {
    let faults = FaultConfig::none();
    let started = Instant::now();
    let mut hash = Fnv::new();
    for &seed in seeds {
        let mut scratch = RunScratch::with_shard_threads(shards);
        let out = base.run_seed_scratch(seed, &faults, &mut scratch);
        for w in &out.result.records {
            hash.mix(w.rank as u64);
            hash.mix(w.bytes);
            hash.mix(w.start.as_nanos());
            hash.mix(w.end.as_nanos());
            hash.mix(w.ost.0 as u64);
        }
        hash.mix(out.result.end.as_nanos());
        hash.mix(out.outcome.lost_bytes);
    }
    (started.elapsed().as_secs_f64(), hash)
}

/// Keep-min merge of one `{bench: {variant: row}}` cell; `min_s` keys
/// inside the row keep the smaller recorded value.
fn merge_cell(entries: &mut Vec<(String, Value)>, bench: &str, mut row: Value) {
    let by_variant = match entries.iter_mut().find(|(k, _)| k == bench) {
        Some((_, v)) => v,
        None => {
            entries.push((bench.to_string(), Value::Obj(Vec::new())));
            &mut entries.last_mut().unwrap().1
        }
    };
    let Value::Obj(pairs) = by_variant else { return };
    if let Some((_, old)) = pairs.iter().find(|(k, _)| k == engine_variant()) {
        keep_min(&mut row, old);
    }
    pairs.retain(|(k, _)| k != engine_variant());
    pairs.push((engine_variant().to_string(), row));
}

/// Recursively keep the smaller of recorded/new for every `*_s` timing.
fn keep_min(new: &mut Value, old: &Value) {
    if let (Value::Obj(np), Value::Obj(op)) = (new, old) {
        for (k, v) in np.iter_mut() {
            let Some((_, o)) = op.iter().find(|(ok, _)| ok == k) else {
                continue;
            };
            match (&mut *v, o) {
                (Value::Num(n), Value::Num(prev)) if k.ends_with("_s") && *prev < *n => {
                    *v = Value::Num(*prev);
                }
                (v @ Value::Obj(_), o @ Value::Obj(_)) => keep_min(v, o),
                _ => {}
            }
        }
    }
}

fn main() {
    let smoke = smoke();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (ops_n, reps, seeds_n) = if smoke { (400, 1, 1) } else { (2500, 3, 3) };
    println!(
        "in_run — variant: {}, {cores} cores, smoke: {smoke}\n",
        engine_variant()
    );

    // --- storage-only coarse-window campaign -------------------------
    let mut storage_row: Vec<(String, Value)> = Vec::new();
    let mut mins = Vec::new();
    let mut reference: Option<Fnv> = None;
    for &shards in &SHARDS {
        let mut best = f64::INFINITY;
        let mut prof = Value::Obj(Vec::new());
        for _ in 0..reps {
            let (wall, hash, p) = storage_campaign(ops_n, shards);
            match reference {
                None => reference = Some(hash),
                Some(r) => assert_eq!(
                    r, hash,
                    "storage campaign diverged at {shards} shard threads"
                ),
            }
            if wall < best {
                best = wall;
                prof = p;
            }
        }
        println!("storage_inrun   x{shards}: min {:>8.3} ms   {prof}", best * 1e3);
        mins.push((shards, best));
        storage_row.push((
            format!("shards{shards}"),
            json!({ "min_s": best, "profile": prof }),
        ));
    }
    let base_s = mins[0].1;
    let best8 = mins.iter().find(|(s, _)| *s == 8).unwrap().1;
    let speedup = base_s / best8;
    let enforced = cores >= 8 && !smoke;
    println!("\nstorage_inrun speedup x8 vs x1: {speedup:.2} (gate enforced: {enforced})");
    storage_row.push(("speedup_8".to_string(), Value::Num(speedup)));
    storage_row.push((
        "gate".to_string(),
        json!({
            "required": 1.5,
            "measured": speedup,
            "enforced": enforced,
            "cores": cores as u64,
        }),
    ));

    // --- cluster-coupled campaign ------------------------------------
    let base = RunBase::prepare(RunSpec {
        machine: franklin(),
        nprocs: if smoke { 32 } else { 96 },
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 24,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::paper_default(),
        seed: 0,
    });
    let seeds: Vec<u64> = (0..seeds_n).map(|i| base_seed() + i).collect();
    let mut coupled_row: Vec<(String, Value)> = Vec::new();
    let mut coupled_ref: Option<Fnv> = None;
    for &shards in &SHARDS {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (wall, hash) = coupled_campaign(&base, &seeds, shards);
            match coupled_ref {
                None => coupled_ref = Some(hash),
                Some(r) => assert_eq!(
                    r, hash,
                    "coupled campaign diverged at {shards} shard threads"
                ),
            }
            best = best.min(wall);
        }
        println!("coupled_inrun   x{shards}: min {:>8.3} ms", best * 1e3);
        coupled_row.push((format!("shards{shards}"), json!({ "min_s": best })));
    }

    // --- artifact -----------------------------------------------------
    let mut root = load_artifact(BENCH_PATH);
    if let Value::Obj(entries) = &mut root {
        merge_cell(entries, "storage_inrun", Value::Obj(storage_row));
        merge_cell(entries, "coupled_inrun", Value::Obj(coupled_row));
    }
    store_artifact(BENCH_PATH, &root);
    println!("\nresults merged into {BENCH_PATH}");

    assert!(
        !enforced || speedup >= 1.5,
        "in-run sharding gate: {speedup:.2}x at 8 threads on {cores} cores (need 1.5x)"
    );
}
