//! Streaming estimators: exponentially weighted moving averages and the
//! P² online quantile sketch.
//!
//! The control loop (adios-core `control.rs`) and the sweep reports both
//! need per-key latency summaries over streams whose length is unknown
//! up front and whose samples must not be buffered. Two estimators cover
//! that:
//!
//! - [`Ewma`] — a smoothed mean with O(1) state. Its `merge` is the
//!   count-weighted mean of the two running values, which is exactly
//!   commutative (IEEE addition and multiplication of the two symmetric
//!   terms), so partial estimators can be combined in any order.
//! - [`P2Quantile`] — the Jain & Chlamtac P² algorithm: five markers
//!   track the target quantile with O(1) state and no sample buffer.
//!   Streams shorter than five samples are kept exactly. `merge` blends
//!   marker heights by observation count — a heuristic that is exact for
//!   identical distributions and property-tested to stay within
//!   tolerance of the exact quantile for split streams
//!   (tests/properties.rs).
//!
//! Both estimators ignore non-finite samples, report `0.0` on an empty
//! stream, and never panic — they sit on the hot completion path of the
//! adaptive protocol's straggler detector where a poisoned sample must
//! not take the run down.

/// Exponentially weighted moving average with commutative count-weighted
/// merge.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    n: u64,
}

impl Ewma {
    /// A fresh estimator; `alpha` in (0, 1] is the weight of each new
    /// sample (clamped into that range).
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::EPSILON, 1.0)
        } else {
            0.25
        };
        Ewma {
            alpha,
            value: 0.0,
            n: 0,
        }
    }

    /// Feed one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n == 0 {
            self.value = x;
        } else {
            self.value += self.alpha * (x - self.value);
        }
        self.n += 1;
    }

    /// Current smoothed value; `0.0` before the first sample.
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.value
        }
    }

    /// Finite samples observed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Fold another estimator in: the result's value is the
    /// count-weighted mean of both, its count the sum. Exactly
    /// commutative: `a.merge(b)` and `b.merge(a)` produce bit-identical
    /// values.
    pub fn merge(&mut self, other: &Ewma) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.value = other.value;
            self.n = other.n;
            return;
        }
        let (wa, wb) = (self.n as f64, other.n as f64);
        self.value = (self.value * wa + other.value * wb) / (wa + wb);
        self.n += other.n;
    }
}

/// Desired-position increments for the five P² markers at quantile `q`.
fn p2_increments(q: f64) -> [f64; 5] {
    [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
}

/// Online estimator of a single quantile via the P² algorithm
/// (Jain & Chlamtac, CACM 1985). O(1) state, no sample buffer.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Finite samples observed.
    n: u64,
    /// First (up to) five samples, kept sorted — exact until the markers
    /// take over.
    init: [f64; 5],
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    h: [f64; 5],
    /// Actual marker positions (1-based sample counts).
    pos: [f64; 5],
    /// Desired marker positions.
    des: [f64; 5],
}

impl P2Quantile {
    /// Track the `q`-quantile, `q` in (0, 1) (clamped into that range).
    pub fn new(q: f64) -> Self {
        let q = if q.is_finite() {
            q.clamp(1e-6, 1.0 - 1e-6)
        } else {
            0.5
        };
        P2Quantile {
            q,
            n: 0,
            init: [0.0; 5],
            h: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            des: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Finite samples observed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Feed one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n < 5 {
            // Insertion into the sorted exact prefix.
            let mut i = self.n as usize;
            self.init[i] = x;
            while i > 0 && self.init[i - 1] > self.init[i] {
                self.init.swap(i - 1, i);
                i -= 1;
            }
            self.n += 1;
            if self.n == 5 {
                self.h = self.init;
                self.pos = [1.0, 2.0, 3.0, 4.0, 5.0];
                self.des = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ];
            }
            return;
        }
        self.n += 1;
        // Cell containing x, extending the extreme markers if needed.
        let k = if x < self.h[0] {
            self.h[0] = x;
            0
        } else if x >= self.h[4] {
            self.h[4] = self.h[4].max(x);
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.h[i] && x < self.h[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        let inc = p2_increments(self.q);
        for (d, i) in self.des.iter_mut().zip(inc) {
            *d += i;
        }
        // Adjust the three interior markers toward their desired
        // positions, parabolic first, linear when that would disorder
        // the heights.
        for i in 1..4 {
            let d = self.des[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let hp = self.parabolic(i, d);
                self.h[i] = if self.h[i - 1] < hp && hp < self.h[i + 1] {
                    hp
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, p) = (&self.h, &self.pos);
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.h[i] + d * (self.h[j] - self.h[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate: exact (linear interpolation) while fewer than
    /// five samples have been seen, the middle marker after; `0.0` on an
    /// empty stream.
    pub fn value(&self) -> f64 {
        match self.n {
            0 => 0.0,
            n if n < 5 => {
                let s = &self.init[..n as usize];
                let pos = self.q * (s.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                if lo == hi {
                    s[lo]
                } else {
                    let frac = pos - lo as f64;
                    s[lo] * (1.0 - frac) + s[hi] * frac
                }
            }
            _ => self.h[2],
        }
    }

    /// Fold another estimator for the same quantile in.
    ///
    /// If either side is still in its exact prefix, its samples are
    /// replayed (in sorted order) into the other — the same result
    /// whichever side is `self`. When both have live markers, heights
    /// are blended by observation count and positions summed; that is
    /// commutative, and property tests pin the blended estimate within
    /// tolerance of the exact quantile of the combined stream.
    pub fn merge(&mut self, other: &P2Quantile) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        if self.n < 5 || other.n < 5 {
            // Replay the combined exact prefixes, or the short side into
            // the marker side, in globally sorted order (symmetric).
            if self.n < 5 && other.n < 5 {
                let mut all: Vec<f64> = self.init[..self.n as usize].to_vec();
                all.extend_from_slice(&other.init[..other.n as usize]);
                all.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                let mut fresh = P2Quantile::new(self.q);
                for x in all {
                    fresh.observe(x);
                }
                *self = fresh;
            } else if self.n < 5 {
                let mut big = other.clone();
                for &x in &self.init[..self.n as usize] {
                    big.observe(x);
                }
                *self = big;
            } else {
                for &x in &other.init[..other.n as usize] {
                    self.observe(x);
                }
            }
            return;
        }
        let (wa, wb) = (self.n as f64, other.n as f64);
        let w = wa + wb;
        for (i, inc) in p2_increments(self.q).into_iter().enumerate() {
            self.h[i] = (self.h[i] * wa + other.h[i] * wb) / w;
            // Marker i sits near 1 + (n-1)·inc[i] on each side; summing
            // both and removing the double-counted base keeps the
            // combined positions consistent: pos[0] stays 1, pos[4]
            // becomes n_a + n_b.
            self.pos[i] += other.pos[i] - (1.0 - inc);
            self.des[i] += other.des[i] - (1.0 - inc);
        }
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::quantile;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn ewma_basics() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.observe(4.0);
        assert_eq!(e.value(), 4.0);
        e.observe(8.0);
        assert!((e.value() - 6.0).abs() < 1e-12);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ewma_merge_is_commutative() {
        let mut a = Ewma::new(0.3);
        let mut b = Ewma::new(0.3);
        for i in 0..7 {
            a.observe(i as f64);
        }
        for i in 0..13 {
            b.observe((i * i) as f64);
        }
        let (mut ab, mut ba) = (a, b);
        ab.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.value().to_bits(), ba.value().to_bits());
        assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), 0.0);
        for x in [9.0, 1.0, 5.0] {
            p.observe(x);
        }
        assert_eq!(p.value(), 5.0);
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut p = P2Quantile::new(0.5);
        let mut seed = 42u64;
        let mut samples = Vec::new();
        for _ in 0..1000 {
            let x = lcg(&mut seed);
            samples.push(x);
            p.observe(x);
        }
        let exact = quantile(&samples, 0.5);
        assert!(
            (p.value() - exact).abs() < 0.05,
            "p2 {} vs exact {exact}",
            p.value()
        );
    }

    #[test]
    fn p2_ignores_poisoned_samples() {
        let mut p = P2Quantile::new(0.9);
        for i in 0..100 {
            p.observe(i as f64);
            p.observe(f64::NAN);
            p.observe(f64::NEG_INFINITY);
        }
        assert_eq!(p.count(), 100);
        assert!(p.value() > 50.0 && p.value() < 100.0);
    }

    #[test]
    fn p2_merge_two_way_is_commutative() {
        let mut seed = 7u64;
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for _ in 0..300 {
            a.observe(lcg(&mut seed));
        }
        for _ in 0..500 {
            b.observe(2.0 * lcg(&mut seed));
        }
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.value().to_bits(), ba.value().to_bits());
        assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn p2_merge_with_short_side_is_symmetric() {
        let mut seed = 11u64;
        let mut big = P2Quantile::new(0.5);
        for _ in 0..200 {
            big.observe(lcg(&mut seed));
        }
        let mut small = P2Quantile::new(0.5);
        for x in [0.1, 0.9, 0.4] {
            small.observe(x);
        }
        let (mut ab, mut ba) = (big.clone(), small.clone());
        ab.merge(&small);
        ba.merge(&big);
        assert_eq!(ab.value().to_bits(), ba.value().to_bits());
        assert_eq!(ab.count(), 203);
    }
}
