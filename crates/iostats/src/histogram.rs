//! Fixed-bin histograms (Figure 2 of the paper: the distribution of IO
//! bandwidth samples under external interference).

/// A histogram over `[lo, hi)` with equal-width bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `lo` (kept, not dropped).
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Build with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "bad histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build covering the full range of `samples` with `bins` bins, then
    /// fill it.
    pub fn of(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            hi = lo + 1.0; // degenerate: all samples equal
        }
        // Nudge hi so the max sample lands in the last bin, not overflow.
        let mut h = Histogram::new(lo, hi * (1.0 + 1e-12) + 1e-300, bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Insert one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Render as ASCII rows: `center | #### count`, scaled to `width`.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().cloned().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "{:>12.1} | {:<w$} {}\n",
                self.bin_center(i),
                "#".repeat(bar_len),
                c,
                w = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.add(x);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.5);
        h.add(1.0);
        h.add(2.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn of_covers_all_samples() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::of(&samples, 10);
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn of_handles_constant_samples() {
        let h = Histogram::of(&[5.0; 10], 4);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow + h.overflow, 0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn render_shows_all_bins() {
        let h = Histogram::of(&[1.0, 2.0, 2.0, 3.0], 3);
        let r = h.render(20);
        assert_eq!(r.lines().count(), 3);
        assert!(r.contains('#'));
    }
}
