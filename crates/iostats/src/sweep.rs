//! Streaming sweep statistics: flat-memory aggregation for 1000+-seed
//! campaigns.
//!
//! A fleet sweep runs one simulation per seed and wants distribution
//! statistics (mean/CV, percentiles, imbalance, per-OST load) over all
//! seeds — without materializing a `Vec` of per-seed results. Workers
//! fold each run into a [`SweepSample`] (a handful of scalars plus the
//! touched-OST byte counts) and feed it to a [`SweepSink`]; sinks from
//! different workers [`merge`](SweepSink::merge) losslessly.
//!
//! Everything in the sink is **exactly order-independent**: counts are
//! integers, extrema are idempotent, sums use [`ExactSum`]
//! superaccumulators, and percentiles come from an exactly-mergeable
//! log-bucketed histogram ([`LogHistogram`]). Feeding the same multiset
//! of samples through any tree of sinks and merges therefore produces a
//! byte-identical [`report`](SweepSink::report) — the property the sweep
//! determinism suite pins.

use crate::exact::ExactSum;
use minijson::{json, Value};

/// Sub-bucket bits per octave: 16 log-spaced buckets per power of two,
/// ≈ 4.4 % relative resolution on percentile reads.
const SUB_BITS: u32 = 4;
/// Lowest biased exponent in the histogram window (2⁻⁶⁴).
const E_LO: u64 = 1023 - 64;
/// One past the highest biased exponent in the window (2⁶⁴).
const E_HI: u64 = 1023 + 64;
/// Total in-window bucket count.
const BUCKETS: usize = ((E_HI - E_LO) as usize) << SUB_BITS;

/// Exactly-mergeable log-bucketed histogram of nonnegative samples.
///
/// Buckets are defined purely by the bit pattern of the sample (biased
/// exponent plus the top 4 mantissa bits), so bucketing is deterministic
/// and merge is element-wise `u64` addition — associative, commutative,
/// lossless. Values outside `[2⁻⁶⁴, 2⁶⁴)` are clamped into underflow and
/// overflow buckets; zeros get their own bucket; NaN is tallied but
/// excluded from quantiles.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    zero: u64,
    under: u64,
    over: u64,
    nan: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            zero: 0,
            under: 0,
            over: 0,
            nan: 0,
        }
    }

    /// Record one sample. Negative values clamp into the underflow
    /// bucket (sweep metrics are nonnegative by construction).
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
            return;
        }
        if v == 0.0 {
            self.zero += 1;
            return;
        }
        if v < 0.0 {
            self.under += 1;
            return;
        }
        let bits = v.to_bits();
        let e = bits >> 52; // sign bit is 0 here
        if e < E_LO {
            self.under += 1;
        } else if e >= E_HI {
            self.over += 1;
        } else {
            let sub = (bits >> (52 - SUB_BITS)) & ((1 << SUB_BITS) - 1);
            self.counts[(((e - E_LO) << SUB_BITS) | sub) as usize] += 1;
        }
    }

    /// Element-wise merge: exactly the histogram of the union multiset.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.zero += other.zero;
        self.under += other.under;
        self.over += other.over;
        self.nan += other.nan;
    }

    /// Total recorded samples, excluding NaN.
    pub fn total(&self) -> u64 {
        self.zero + self.under + self.over + self.counts.iter().sum::<u64>()
    }

    /// Nearest-rank `q`-quantile (0 ≤ q ≤ 1) over the bucketed samples.
    ///
    /// Resolution is one bucket (≈ 4.4 % relative); the returned value is
    /// the bucket's midpoint in mantissa space, built from raw bits so
    /// the result is bit-deterministic. Returns NaN on an empty
    /// histogram; the underflow/overflow buckets report the window edges.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let rank = (q * (total - 1) as f64).round() as u64;
        let mut seen = self.zero;
        if rank < seen {
            return 0.0;
        }
        seen += self.under;
        if rank < seen {
            // Lower window edge 2^-64.
            return f64::from_bits(E_LO << 52);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank < seen {
                return bucket_mid(i);
            }
        }
        // Upper window edge 2^64.
        f64::from_bits(E_HI << 52)
    }
}

/// Midpoint (in mantissa space) of in-window bucket `i`, from raw bits.
fn bucket_mid(i: usize) -> f64 {
    let e = E_LO + (i >> SUB_BITS) as u64;
    let sub = (i as u64) & ((1 << SUB_BITS) - 1);
    f64::from_bits((e << 52) | (sub << (52 - SUB_BITS)) | (1u64 << (52 - SUB_BITS - 1)))
}

/// One run's contribution to a sweep, extracted by the runner: a few
/// scalars plus compact per-OST byte counts. Cheap to ship between
/// worker threads; everything a [`SweepSink`] accumulates comes from
/// here.
#[derive(Clone, Debug)]
pub struct SweepSample {
    /// Seed of the run.
    pub seed: u64,
    /// Aggregate bandwidth over the write span, bytes/sec.
    pub bandwidth: f64,
    /// First-write-start to last-write-end span, seconds.
    pub write_span: f64,
    /// Standard deviation of per-writer write times, seconds (Fig. 7).
    pub write_time_std: f64,
    /// Slowest/fastest writer time ratio (§II-2).
    pub imbalance: f64,
    /// Bytes written by the run.
    pub total_bytes: u64,
    /// Bytes lost to faults.
    pub lost_bytes: u64,
    /// IO errors surfaced to the protocol layer.
    pub errors: u64,
    /// Records the integrity oracle marked corrupted.
    pub corrupt_records: u64,
    /// Adaptively diverted writes.
    pub adaptive_writes: u64,
    /// `true` when the run produced no usable write records (e.g. every
    /// writer was killed): counters still accumulate, distribution
    /// metrics are skipped.
    pub failed: bool,
    /// `(ost index, bytes)` for every OST the run touched.
    pub ost_bytes: Vec<(u32, u64)>,
}

/// Streaming accumulator for one sweep metric: count, exact sum and
/// sum-of-squares, extrema, and a log histogram for percentiles. All
/// state is exactly order-independent.
#[derive(Clone, Debug)]
pub struct MetricAcc {
    n: u64,
    sum: ExactSum,
    sumsq: ExactSum,
    min: f64,
    max: f64,
    hist: LogHistogram,
}

impl Default for MetricAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        MetricAcc {
            n: 0,
            sum: ExactSum::new(),
            sumsq: ExactSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: LogHistogram::new(),
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: f64) {
        self.n += 1;
        self.sum.add(v);
        self.sumsq.add(v * v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.add(v);
    }

    /// Exact merge of another accumulator.
    pub fn merge(&mut self, other: &MetricAcc) {
        self.n += other.n;
        self.sum.merge(&other.sum);
        self.sumsq.merge(&other.sumsq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Sample count.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum.value() / self.n as f64
        }
    }

    /// Sample standard deviation, n − 1 denominator (0.0 below 2
    /// samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let s = self.sum.value();
        let var = (self.sumsq.value() - s * s / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Coefficient of variation (stddev / mean; 0.0 on zero mean).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Histogram `q`-quantile (bucket resolution; NaN when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }

    /// JSON summary of this metric.
    pub fn to_json(&self) -> Value {
        json!({
            "n": self.n,
            "mean": self.mean(),
            "std_dev": self.std_dev(),
            "cv": self.cv(),
            "min": self.min(),
            "max": self.max(),
            "p5": self.quantile(0.05),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        })
    }
}

/// Streaming sweep aggregator: fold [`SweepSample`]s in, merge sinks
/// from parallel workers, read one report at the end. Memory is flat in
/// the number of samples (a few histograms plus one `u64` pair per OST).
#[derive(Clone, Debug)]
pub struct SweepSink {
    ost_count: usize,
    samples: u64,
    failed_samples: u64,
    bandwidth: MetricAcc,
    write_span: MetricAcc,
    write_time_std: MetricAcc,
    imbalance: MetricAcc,
    total_bytes: u64,
    lost_bytes: u64,
    errors: u64,
    corrupt_records: u64,
    adaptive_writes: u64,
    per_ost_bytes: Vec<u64>,
    per_ost_writes: Vec<u64>,
}

impl SweepSink {
    /// An empty sink for a machine with `ost_count` storage targets.
    pub fn new(ost_count: usize) -> Self {
        SweepSink {
            ost_count,
            samples: 0,
            failed_samples: 0,
            bandwidth: MetricAcc::new(),
            write_span: MetricAcc::new(),
            write_time_std: MetricAcc::new(),
            imbalance: MetricAcc::new(),
            total_bytes: 0,
            lost_bytes: 0,
            errors: 0,
            corrupt_records: 0,
            adaptive_writes: 0,
            per_ost_bytes: vec![0; ost_count],
            per_ost_writes: vec![0; ost_count],
        }
    }

    /// Fold one run in.
    pub fn add_sample(&mut self, s: &SweepSample) {
        self.samples += 1;
        self.total_bytes += s.total_bytes;
        self.lost_bytes += s.lost_bytes;
        self.errors += s.errors;
        self.corrupt_records += s.corrupt_records;
        self.adaptive_writes += s.adaptive_writes;
        for &(ost, bytes) in &s.ost_bytes {
            let i = ost as usize;
            assert!(i < self.ost_count, "OST {i} out of range");
            self.per_ost_bytes[i] += bytes;
            self.per_ost_writes[i] += 1;
        }
        if s.failed {
            self.failed_samples += 1;
            return;
        }
        self.bandwidth.add(s.bandwidth);
        self.write_span.add(s.write_span);
        self.write_time_std.add(s.write_time_std);
        self.imbalance.add(s.imbalance);
    }

    /// Exact merge of another worker's sink. Panics on OST-count
    /// mismatch (different machines cannot share a sweep).
    pub fn merge(&mut self, other: &SweepSink) {
        assert_eq!(
            self.ost_count, other.ost_count,
            "merging sinks from different machines"
        );
        self.samples += other.samples;
        self.failed_samples += other.failed_samples;
        self.bandwidth.merge(&other.bandwidth);
        self.write_span.merge(&other.write_span);
        self.write_time_std.merge(&other.write_time_std);
        self.imbalance.merge(&other.imbalance);
        self.total_bytes += other.total_bytes;
        self.lost_bytes += other.lost_bytes;
        self.errors += other.errors;
        self.corrupt_records += other.corrupt_records;
        self.adaptive_writes += other.adaptive_writes;
        for (a, b) in self.per_ost_bytes.iter_mut().zip(&other.per_ost_bytes) {
            *a += b;
        }
        for (a, b) in self.per_ost_writes.iter_mut().zip(&other.per_ost_writes) {
            *a += b;
        }
    }

    /// Total samples folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples that produced no usable records.
    pub fn failed_samples(&self) -> u64 {
        self.failed_samples
    }

    /// Aggregate bandwidth distribution (bytes/sec).
    pub fn bandwidth(&self) -> &MetricAcc {
        &self.bandwidth
    }

    /// Write-span distribution (seconds).
    pub fn write_span(&self) -> &MetricAcc {
        &self.write_span
    }

    /// Per-writer write-time standard deviation distribution (seconds).
    pub fn write_time_std(&self) -> &MetricAcc {
        &self.write_time_std
    }

    /// Imbalance-factor distribution.
    pub fn imbalance(&self) -> &MetricAcc {
        &self.imbalance
    }

    /// Total bytes written across all samples.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Per-OST cumulative bytes across the sweep.
    pub fn per_ost_bytes(&self) -> &[u64] {
        &self.per_ost_bytes
    }

    /// Cross-OST load imbalance over the whole sweep: max OST bytes over
    /// mean OST bytes (1.0 = perfectly even; 0.0 if nothing was
    /// written).
    pub fn ost_load_imbalance(&self) -> f64 {
        let max = self.per_ost_bytes.iter().max().copied().unwrap_or(0);
        if max == 0 {
            return 0.0;
        }
        let mean = self.total_bytes as f64 / self.ost_count as f64;
        max as f64 / mean
    }

    /// Full JSON report. Byte-identical for any add/merge tree covering
    /// the same multiset of samples.
    pub fn report(&self) -> Value {
        let busiest = self
            .per_ost_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(i, b)| (*b, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        json!({
            "samples": self.samples,
            "failed_samples": self.failed_samples,
            "bandwidth": self.bandwidth.to_json(),
            "write_span": self.write_span.to_json(),
            "write_time_std": self.write_time_std.to_json(),
            "imbalance": self.imbalance.to_json(),
            "total_bytes": self.total_bytes,
            "lost_bytes": self.lost_bytes,
            "errors": self.errors,
            "corrupt_records": self.corrupt_records,
            "adaptive_writes": self.adaptive_writes,
            "ost_count": self.ost_count,
            "ost_load_imbalance": self.ost_load_imbalance(),
            "busiest_ost": busiest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random sample stream (xorshift64*; no
    /// external RNG dependency in this crate).
    fn synth_samples(n: usize, seed0: u64) -> Vec<SweepSample> {
        let mut state = seed0 | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        (0..n)
            .map(|i| {
                let r = next();
                let frac = |x: u64| (x % 10_000) as f64 / 10_000.0;
                let bw = 1e8 + 9e8 * frac(r);
                let span = 0.5 + 10.0 * frac(r >> 13);
                SweepSample {
                    seed: i as u64,
                    bandwidth: bw,
                    write_span: span,
                    write_time_std: 1e-3 + frac(r >> 29),
                    imbalance: 1.0 + 6.0 * frac(r >> 41),
                    total_bytes: (bw * span) as u64,
                    lost_bytes: r % 3,
                    errors: r % 2,
                    corrupt_records: r % 5,
                    adaptive_writes: r % 17,
                    failed: r % 37 == 0,
                    ost_bytes: vec![
                        ((r % 8) as u32, 1000 + r % 999),
                        (((r >> 7) % 8) as u32, 500 + r % 499),
                    ],
                }
            })
            .collect()
    }

    fn serial_sink(samples: &[SweepSample]) -> SweepSink {
        let mut sink = SweepSink::new(8);
        for s in samples {
            sink.add_sample(s);
        }
        sink
    }

    /// The satellite property: distributing samples across per-worker
    /// sinks and merging them in *any* order yields a report
    /// byte-identical to one serial sink — histograms, percentiles,
    /// means, everything.
    #[test]
    fn merge_any_order_matches_serial_sink() {
        let samples = synth_samples(400, 0xFEED_5EED);
        let want = serial_sink(&samples).report().to_string();
        for workers in [2usize, 3, 5, 8] {
            // Simulate dynamic claiming: worker w gets a pseudo-random
            // subset, not a contiguous chunk.
            let mut parts: Vec<SweepSink> = (0..workers).map(|_| SweepSink::new(8)).collect();
            for (i, s) in samples.iter().enumerate() {
                parts[(i * 2654435761) % workers].add_sample(s);
            }
            // Merge orders: forward, reverse, middle-out.
            let orders: Vec<Vec<usize>> = vec![
                (0..workers).collect(),
                (0..workers).rev().collect(),
                (0..workers).map(|i| (i + workers / 2) % workers).collect(),
            ];
            for order in orders {
                let mut merged = SweepSink::new(8);
                for &w in &order {
                    merged.merge(&parts[w]);
                }
                assert_eq!(
                    merged.report().to_string(),
                    want,
                    "workers={workers} order={order:?}"
                );
            }
        }
    }

    #[test]
    fn sample_order_does_not_matter_either() {
        let samples = synth_samples(200, 0xA11CE);
        let want = serial_sink(&samples).report().to_string();
        let mut rev = samples.clone();
        rev.reverse();
        assert_eq!(serial_sink(&rev).report().to_string(), want);
    }

    #[test]
    fn counters_and_failures_accumulate() {
        let samples = synth_samples(100, 7);
        let sink = serial_sink(&samples);
        assert_eq!(sink.samples(), 100);
        let failed = samples.iter().filter(|s| s.failed).count() as u64;
        assert_eq!(sink.failed_samples(), failed);
        assert_eq!(sink.bandwidth().n(), 100 - failed);
        let bytes: u64 = samples.iter().map(|s| s.total_bytes).sum();
        assert_eq!(sink.total_bytes(), bytes);
        let per_ost: u64 = sink.per_ost_bytes().iter().sum();
        let expect: u64 = samples
            .iter()
            .flat_map(|s| s.ost_bytes.iter().map(|&(_, b)| b))
            .sum();
        assert_eq!(per_ost, expect);
    }

    #[test]
    fn metric_statistics_match_direct_computation() {
        let xs: Vec<f64> = (1..=50).map(|i| 100.0 + i as f64 * 3.5).collect();
        let mut acc = MetricAcc::new();
        for &x in &xs {
            acc.add(x);
        }
        let s = crate::Summary::of(&xs);
        assert!((acc.mean() - s.mean).abs() < 1e-9);
        assert!((acc.std_dev() - s.std_dev).abs() < 1e-9);
        assert_eq!(acc.min(), s.min);
        assert_eq!(acc.max(), s.max);
        assert_eq!(acc.n(), 50);
    }

    #[test]
    fn histogram_quantiles_track_exact_quantiles() {
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 + i as f64).collect();
        let mut h = LogHistogram::new();
        for &x in &xs {
            h.add(x);
        }
        for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let exact = crate::quantile(&xs, q);
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn histogram_edge_cases() {
        let mut h = LogHistogram::new();
        assert!(h.quantile(0.5).is_nan());
        h.add(0.0);
        h.add(1e-300); // below window → underflow bucket
        h.add(1e300); // above window → overflow bucket
        h.add(f64::NAN); // excluded
        assert_eq!(h.total(), 3);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), f64::from_bits(E_HI << 52));
    }

    #[test]
    fn empty_sink_reports_cleanly() {
        let sink = SweepSink::new(4);
        assert_eq!(sink.samples(), 0);
        assert_eq!(sink.bandwidth().mean(), 0.0);
        assert_eq!(sink.ost_load_imbalance(), 0.0);
        // Report must not panic and must be stable.
        assert_eq!(sink.report().to_string(), sink.report().to_string());
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn merging_mismatched_ost_counts_panics() {
        let mut a = SweepSink::new(4);
        a.merge(&SweepSink::new(8));
    }
}
