//! Exact, order-independent summation of `f64` samples.
//!
//! Streaming sweep statistics are folded by parallel workers and merged,
//! so accumulator state must not depend on the order samples arrived —
//! otherwise merging per-worker partials in a different order (or using
//! a different thread count) would change the last bits of every mean
//! and variance. Plain floating-point addition is not associative, so a
//! running `f64` sum cannot give that guarantee.
//!
//! [`ExactSum`] is a fixed-point *superaccumulator*: every finite `f64`
//! is an integer multiple of 2⁻¹⁰⁷⁴, so the running sum is kept as a
//! wide integer in base 2³² covering the entire double exponent range.
//! Integer addition is exactly associative and commutative, which makes
//! [`ExactSum::add`] order-independent and [`ExactSum::merge`] a lossless
//! digit-wise add: any grouping of the same multiset of samples yields
//! the same canonical state, and therefore the same [`ExactSum::value`],
//! bit for bit. Positive and negative contributions are accumulated in
//! separate magnitude accumulators and subtracted exactly at read time,
//! so cancellation (`1e16 + 1.0 - 1e16`) loses nothing.
//!
//! Memory is a flat ~1.1 KB regardless of how many samples were added.

/// Number of base-2³² digits: bit positions 0..=2097 cover every finite
/// double scaled by 2¹⁰⁷⁴ (top set bit ≤ 971 + 52 + 1074), and the spare
/// digits absorb carries from huge sample counts (up to ~2¹⁴⁰ samples of
/// the largest magnitude before the top digit could overflow).
const DIGITS: usize = 70;

/// Normalize (propagate carries) after this many raw adds; each add
/// deposits < 2³² into a digit, so digits stay well below `u64::MAX`
/// between normalizations.
const NORM_EVERY: u32 = 1 << 30;

const MASK: u128 = 0xFFFF_FFFF;

/// Exact order-independent sum of `f64` samples. See the module docs.
#[derive(Clone, Debug)]
pub struct ExactSum {
    /// Magnitude digits of positive contributions, base 2³², little
    /// endian, scaled by 2⁻¹⁰⁷⁴. Lazily normalized.
    pos: [u64; DIGITS],
    /// Magnitude digits of negative contributions.
    neg: [u64; DIGITS],
    /// Raw adds since the last carry propagation.
    dirty: u32,
    /// Count of NaN samples (poisons the value).
    nan: u64,
    /// Count of +∞ samples.
    pos_inf: u64,
    /// Count of −∞ samples.
    neg_inf: u64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// An empty sum (value 0.0).
    pub fn new() -> Self {
        ExactSum {
            pos: [0; DIGITS],
            neg: [0; DIGITS],
            dirty: 0,
            nan: 0,
            pos_inf: 0,
            neg_inf: 0,
        }
    }

    /// Add one sample. Exact for all finite inputs; NaN and ±∞ are
    /// tallied and reproduced by [`value`](Self::value) with the usual
    /// IEEE semantics (NaN poisons, opposing infinities make NaN).
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf += 1;
            } else {
                self.neg_inf += 1;
            }
            return;
        }
        let bits = x.to_bits();
        let exp_bits = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // x = m · 2^e with integer m < 2^53.
        let (m, e) = if exp_bits == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        // Bit position of m's lowest bit in the fixed-point frame.
        let p = (e + 1074) as usize;
        let (c, sh) = (p / 32, p % 32);
        let wide = (m as u128) << sh; // < 2^(53+32)
        let target = if bits >> 63 == 0 {
            &mut self.pos
        } else {
            &mut self.neg
        };
        target[c] += (wide & MASK) as u64;
        target[c + 1] += ((wide >> 32) & MASK) as u64;
        target[c + 2] += ((wide >> 64) & MASK) as u64;
        self.dirty += 1;
        if self.dirty >= NORM_EVERY {
            self.normalize();
        }
    }

    /// Fold another accumulator in, exactly. Equivalent to having added
    /// every one of `other`'s samples to `self`, in any order.
    pub fn merge(&mut self, other: &ExactSum) {
        merge_digits(&mut self.pos, &other.pos);
        merge_digits(&mut self.neg, &other.neg);
        self.dirty = 0;
        self.nan += other.nan;
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
    }

    /// Propagate carries so every digit is in `[0, 2³²)`. The canonical
    /// form is unique for a given multiset of samples.
    fn normalize(&mut self) {
        normalize_digits(&mut self.pos);
        normalize_digits(&mut self.neg);
        self.dirty = 0;
    }

    /// The current sum, rounded to `f64` (faithful within 1 ulp).
    ///
    /// Deterministic: any sequence of [`add`](Self::add)/
    /// [`merge`](Self::merge) calls covering the same multiset of samples
    /// produces bit-identical output.
    pub fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        let mut pos = self.pos;
        let mut neg = self.neg;
        normalize_digits(&mut pos);
        normalize_digits(&mut neg);
        // Exact signed difference of the two magnitudes, then one
        // rounding at the end — cancellation costs nothing.
        match compare_digits(&pos, &neg) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => {
                subtract_digits(&mut pos, &neg);
                digits_to_f64(&pos)
            }
            std::cmp::Ordering::Less => {
                subtract_digits(&mut neg, &pos);
                -digits_to_f64(&neg)
            }
        }
    }
}

/// `a += b` with full carry propagation (normalizes `a` as a side
/// effect). Works for any digit values — sums go through `u128`.
fn merge_digits(a: &mut [u64; DIGITS], b: &[u64; DIGITS]) {
    let mut carry: u128 = 0;
    for i in 0..DIGITS {
        let v = a[i] as u128 + b[i] as u128 + carry;
        a[i] = (v & MASK) as u64;
        carry = v >> 32;
    }
    debug_assert_eq!(carry, 0, "superaccumulator overflow");
}

fn normalize_digits(d: &mut [u64; DIGITS]) {
    let mut carry: u128 = 0;
    for x in d.iter_mut() {
        let v = *x as u128 + carry;
        *x = (v & MASK) as u64;
        carry = v >> 32;
    }
    debug_assert_eq!(carry, 0, "superaccumulator overflow");
}

/// Compare two normalized magnitudes.
fn compare_digits(a: &[u64; DIGITS], b: &[u64; DIGITS]) -> std::cmp::Ordering {
    for i in (0..DIGITS).rev() {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
    }
    std::cmp::Ordering::Equal
}

/// `a -= b` for normalized magnitudes with `a >= b` (schoolbook borrow).
fn subtract_digits(a: &mut [u64; DIGITS], b: &[u64; DIGITS]) {
    let mut borrow: i128 = 0;
    for i in 0..DIGITS {
        let v = a[i] as i128 - b[i] as i128 - borrow;
        if v < 0 {
            a[i] = (v + (1i128 << 32)) as u64;
            borrow = 1;
        } else {
            a[i] = v as u64;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtract_digits requires a >= b");
}

/// Convert a normalized nonzero magnitude (scaled by 2⁻¹⁰⁷⁴) to `f64`:
/// take the top 128 significant bits and apply the power-of-two scale.
fn digits_to_f64(d: &[u64; DIGITS]) -> f64 {
    let top = match (0..DIGITS).rev().find(|&i| d[i] != 0) {
        Some(t) => t,
        None => return 0.0,
    };
    // Pack digits top, top-1, top-2, top-3 into a u128 (missing low
    // digits are zero); the scale places digit `top-3` at bit 0.
    let mut val: u128 = 0;
    for k in 0..4 {
        val <<= 32;
        let idx = top as isize - k;
        if idx >= 0 {
            val |= d[idx as usize] as u128;
        }
    }
    let scale = 32 * (top as i64 - 3) - 1074;
    // `val as f64` rounds 128 → 53 bits once. The scale can exceed the
    // single-factor exponent range in either direction (e.g. a magnitude
    // living entirely in digit 0 has scale −1170), so apply it as two
    // in-range power-of-two factors: the first keeps the intermediate
    // normal (exact), only the last multiply can round or saturate.
    let a = scale.clamp(-960, 895);
    (val as f64) * exp2i(a) * exp2i(scale - a)
}

/// Exact 2^k as f64 (0.0 on underflow, ∞ on overflow). Built from raw
/// bits — no libm, no platform variance.
fn exp2i(k: i64) -> f64 {
    if (-1022..=1023).contains(&k) {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else if (-1074..-1022).contains(&k) {
        f64::from_bits(1u64 << (k + 1074))
    } else if k < -1074 {
        0.0
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(xs: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &x in xs {
            s.add(x);
        }
        s.value()
    }

    #[test]
    fn small_integers_sum_exactly() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(sum_of(&xs), 5050.0);
    }

    #[test]
    fn cancellation_is_exact() {
        assert_eq!(sum_of(&[1e16, 1.0, -1e16]), 1.0);
        assert_eq!(sum_of(&[1e300, 1e-300, -1e300]), 1e-300);
        assert_eq!(sum_of(&[0.1, -0.1]), 0.0);
    }

    #[test]
    fn order_invariance_is_bit_exact() {
        let xs: Vec<f64> = (0..500)
            .map(|i| {
                let m = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64;
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * m * exp2i((i % 120) as i64 - 60)
            })
            .collect();
        let forward = sum_of(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(sum_of(&rev).to_bits(), forward.to_bits());
        // Interleaved split order.
        let mut odd_even: Vec<f64> = xs.iter().step_by(2).copied().collect();
        odd_even.extend(xs.iter().skip(1).step_by(2));
        assert_eq!(sum_of(&odd_even).to_bits(), forward.to_bits());
    }

    #[test]
    fn merge_matches_single_accumulator() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64) * 1.25e-3 + 1e9).collect();
        let mut whole = ExactSum::new();
        for &x in &xs {
            whole.add(x);
        }
        // Three partials merged in a scrambled order.
        let mut parts = [ExactSum::new(), ExactSum::new(), ExactSum::new()];
        for (i, &x) in xs.iter().enumerate() {
            parts[i % 3].add(x);
        }
        let mut merged = ExactSum::new();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged.value().to_bits(), whole.value().to_bits());
    }

    #[test]
    fn subnormals_accumulate_exactly() {
        let tiny = f64::from_bits(1); // 2^-1074
        assert_eq!(sum_of(&[tiny, tiny, tiny]), f64::from_bits(3));
        assert_eq!(sum_of(&[tiny, -tiny]), 0.0);
    }

    #[test]
    fn special_values() {
        assert_eq!(sum_of(&[]), 0.0);
        assert_eq!(sum_of(&[0.0, -0.0]), 0.0);
        assert_eq!(sum_of(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(sum_of(&[f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(sum_of(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn matches_f64_for_single_values() {
        for x in [
            1.0,
            -1.0,
            std::f64::consts::PI,
            1.7e308,
            -2.2e-308,
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(sum_of(&[x]).to_bits(), x.to_bits(), "x={x:e}");
        }
    }

    #[test]
    fn extreme_magnitude_mix() {
        // f64::MAX + f64::MAX overflows f64 but not the accumulator;
        // subtracting one back lands exactly on MAX again.
        assert_eq!(sum_of(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn exp2i_spot_checks() {
        assert_eq!(exp2i(0), 1.0);
        assert_eq!(exp2i(10), 1024.0);
        assert_eq!(exp2i(-1), 0.5);
        assert_eq!(exp2i(-1074), f64::from_bits(1));
        assert_eq!(exp2i(-1075), 0.0);
        assert_eq!(exp2i(1023), f64::from_bits(0x7FE0_0000_0000_0000));
        assert_eq!(exp2i(1024), f64::INFINITY);
    }
}
