//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every figure/table reproduction prints an aligned text table (and can
//! emit CSV for plotting). Kept dependency-free and deliberately simple.

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — harness cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            debug_assert!(row.iter().all(|c| !c.contains(',')), "comma in CSV cell");
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a bandwidth in MiB/s with sensible precision.
pub fn fmt_mibps(bytes_per_sec: f64) -> String {
    let m = bytes_per_sec / (1u64 << 20) as f64;
    if m >= 1000.0 {
        format!("{m:.0}")
    } else {
        format!("{m:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]).row(vec!["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_mibps_precision() {
        assert_eq!(fmt_mibps(100.0 * (1u64 << 20) as f64), "100.0");
        assert_eq!(fmt_mibps(2048.0 * (1u64 << 20) as f64), "2048");
    }
}
