//! Summary statistics over bandwidth/time samples.
//!
//! Matches what the paper reports: average, standard deviation, and the
//! "covariance" column of Table I — which, from the numbers shown, is the
//! *coefficient of variation* (stddev / mean, as a percentage). We keep
//! the paper's terminology in table headers but name the quantity
//! correctly in the API.

use minijson::{json, Value};

/// Summary of one sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Compute over a slice. Panics on an empty slice (a summary of
    /// nothing is a caller bug in an experiment harness).
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample set");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "n": self.n,
            "mean": self.mean,
            "std_dev": self.std_dev,
            "min": self.min,
            "max": self.max,
        })
    }

    /// Parse from a JSON object produced by [`Summary::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let f = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{k}`"))
        };
        Ok(Summary {
            n: v.get("n")
                .and_then(Value::as_usize)
                .ok_or_else(|| "missing or non-integer field `n`".to_string())?,
            mean: f("mean")?,
            std_dev: f("std_dev")?,
            min: f("min")?,
            max: f("max")?,
        })
    }

    /// Coefficient of variation (stddev / mean) — the paper's
    /// "covariance" column, as a fraction (0.43 = 43 %).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample set, by linear interpolation
/// on the sorted samples.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.std_dev - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_matches_ratio() {
        let s = Summary::of(&[10.0, 20.0, 30.0]);
        assert!((s.cv() - s.std_dev / 20.0).abs() < 1e-12);
    }

    #[test]
    fn cv_of_zero_mean_is_zero() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // Interpolated.
        assert!((quantile(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn json_roundtrip() {
        let s = Summary::of(&[1.0, 2.0]);
        let j = s.to_json().to_string();
        let back = Summary::from_json(&Value::parse(&j).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
