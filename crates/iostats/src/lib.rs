//! # iostats — statistics for the IO variability experiments
//!
//! The quantities the paper reports: sample summaries (average bandwidth,
//! standard deviation, and Table I's "covariance" — the coefficient of
//! variation), histograms (Fig. 2), imbalance factors (§II-2, Fig. 3),
//! plus the text/CSV table rendering every benchmark harness uses.

#![warn(missing_docs)]

pub mod exact;
pub mod histogram;
pub mod imbalance;
pub mod outcome;
pub mod stream;
pub mod summary;
pub mod sweep;
pub mod table;

pub use exact::ExactSum;
pub use histogram::Histogram;
pub use imbalance::{capacity_ratio, imbalance_factor, mean_imbalance};
pub use outcome::{outcome_table, OutcomeRow};
pub use stream::{Ewma, P2Quantile};
pub use summary::{quantile, Summary};
pub use sweep::{LogHistogram, MetricAcc, SweepSample, SweepSink};
pub use table::{fmt_mibps, Table};
