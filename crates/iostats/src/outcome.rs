//! Outcome summary tables: byte- and block-level accounting of runs
//! under faults, rendered alongside the timing tables.
//!
//! The write side reports the `written + lost == total` byte accounting
//! of a run's `WriteOutcome`; the read/scrub side reports the
//! `verified + corrupt + repaired + unread == total` block accounting of
//! a `ReadOutcome`. This crate stays dependency-free, so callers pass the
//! counters, not the core types.

use crate::table::Table;

/// One labelled row of end-to-end accounting for a run: bytes on the
/// write side, blocks on the verify/scrub side.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutcomeRow {
    /// Scenario / method label.
    pub label: String,
    /// Bytes the workload intended to write.
    pub total_bytes: u64,
    /// Bytes durably present at run end.
    pub written_bytes: u64,
    /// Bytes never written or destroyed.
    pub lost_bytes: u64,
    /// Surviving blocks the oracle flagged as silently corrupt.
    pub corrupt_blocks: usize,
    /// Corrupt blocks a scrub pass rewrote.
    pub repaired_blocks: usize,
    /// Corrupt blocks that remained damaged after verification/scrub.
    pub unrepaired_blocks: usize,
    /// Repair traffic: bytes re-landed after destroyed data (whole-extent
    /// recopies under replication; damaged extents only under erasure
    /// coding).
    pub rewritten_bytes: u64,
    /// Of the rewritten bytes, how many were produced by erasure-coded
    /// reconstruction rather than recopying a surviving replica.
    pub reconstructed_bytes: u64,
}

impl OutcomeRow {
    /// True when all bytes landed and no silent damage remains.
    pub fn clean(&self) -> bool {
        self.lost_bytes == 0 && self.unrepaired_blocks == 0
    }
}

fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Render rows of write/integrity accounting as an aligned table with
/// columns: label, total/written/lost MiB, corrupt/repaired/unrepaired
/// block counts, rewrite/reconstruction repair traffic in MiB, and a
/// final verdict column.
pub fn outcome_table(rows: &[OutcomeRow]) -> Table {
    let mut t = Table::new(vec![
        "scenario",
        "total MiB",
        "written MiB",
        "lost MiB",
        "corrupt",
        "repaired",
        "unrepaired",
        "rewritten MiB",
        "reconstr MiB",
        "verdict",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            fmt_mib(r.total_bytes),
            fmt_mib(r.written_bytes),
            fmt_mib(r.lost_bytes),
            r.corrupt_blocks.to_string(),
            r.repaired_blocks.to_string(),
            r.unrepaired_blocks.to_string(),
            fmt_mib(r.rewritten_bytes),
            fmt_mib(r.reconstructed_bytes),
            if r.clean() { "clean" } else { "DAMAGED" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_flags_damage() {
        let rows = vec![
            OutcomeRow {
                label: "adaptive+scrub".into(),
                total_bytes: 4 * 1024 * 1024,
                written_bytes: 4 * 1024 * 1024,
                corrupt_blocks: 3,
                repaired_blocks: 3,
                ..Default::default()
            },
            OutcomeRow {
                label: "mpiio".into(),
                total_bytes: 4 * 1024 * 1024,
                written_bytes: 4 * 1024 * 1024,
                corrupt_blocks: 3,
                unrepaired_blocks: 3,
                ..Default::default()
            },
        ];
        assert!(rows[0].clean() && !rows[1].clean());
        let rendered = outcome_table(&rows).render();
        assert!(rendered.contains("adaptive+scrub"));
        assert!(rendered.contains("clean"));
        assert!(rendered.contains("DAMAGED"));
        assert!(rendered.contains("4.0"));
    }

    #[test]
    fn repair_traffic_columns_render() {
        let rows = vec![OutcomeRow {
            label: "ec4+2".into(),
            total_bytes: 8 * 1024 * 1024,
            written_bytes: 8 * 1024 * 1024,
            rewritten_bytes: 2 * 1024 * 1024,
            reconstructed_bytes: 2 * 1024 * 1024,
            ..Default::default()
        }];
        assert!(rows[0].clean(), "repair traffic alone is not damage");
        let rendered = outcome_table(&rows).render();
        assert!(rendered.contains("rewritten MiB"));
        assert!(rendered.contains("reconstr MiB"));
        assert!(rendered.contains("2.0"));
    }

    #[test]
    fn lost_bytes_are_damage() {
        let r = OutcomeRow {
            label: "x".into(),
            total_bytes: 10,
            written_bytes: 8,
            lost_bytes: 2,
            ..Default::default()
        };
        assert!(!r.clean());
    }
}
