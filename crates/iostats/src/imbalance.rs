//! Imbalance factors.
//!
//! §II-2 of the paper: "we define the imbalance factor of each IO action
//! to be the ratio of the slowest vs. fastest write times across all
//! writers." The paper's external-interference tests observed per-sample
//! factors of 3.44 and 1.18 three minutes apart, and an overall average
//! of 3.79.

/// Imbalance factor of one IO action: slowest / fastest per-writer time.
///
/// Panics on empty input or non-positive times (both indicate a broken
/// experiment harness, not a data condition).
pub fn imbalance_factor(per_writer_times: &[f64]) -> f64 {
    assert!(!per_writer_times.is_empty(), "no writer times");
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for &t in per_writer_times {
        assert!(t > 0.0, "non-positive write time {t}");
        min = min.min(t);
        max = max.max(t);
    }
    max / min
}

/// Mean imbalance factor across many IO actions (the paper's 3.79).
pub fn mean_imbalance(actions: &[Vec<f64>]) -> f64 {
    assert!(!actions.is_empty());
    actions.iter().map(|a| imbalance_factor(a)).sum::<f64>() / actions.len() as f64
}

/// How much more data the fastest writer's target could have absorbed than
/// the slowest's in the same wall time (§II-2: "nearly twice as much data
/// could be written to the faster storage target"). Equal to the imbalance
/// factor under equal per-writer sizes; provided separately for sizes that
/// differ.
pub fn capacity_ratio(bytes: &[u64], times: &[f64]) -> f64 {
    assert_eq!(bytes.len(), times.len());
    assert!(!bytes.is_empty());
    let mut fastest = 0.0f64;
    let mut slowest = f64::INFINITY;
    for (&b, &t) in bytes.iter().zip(times) {
        assert!(t > 0.0);
        let bw = b as f64 / t;
        fastest = fastest.max(bw);
        slowest = slowest.min(bw);
    }
    fastest / slowest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_of_uniform_times_is_one() {
        assert_eq!(imbalance_factor(&[2.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn factor_matches_paper_example() {
        // A 3.44x spread like the paper's Test 1.
        let f = imbalance_factor(&[1.0, 2.0, 3.44]);
        assert!((f - 3.44).abs() < 1e-12);
    }

    #[test]
    fn mean_over_actions() {
        let m = mean_imbalance(&[vec![1.0, 2.0], vec![1.0, 4.0]]);
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_ratio_equal_sizes_matches_imbalance() {
        let times = [1.0, 1.7, 2.6];
        let bytes = [128u64 << 20; 3];
        let c = capacity_ratio(&bytes, &times);
        let f = imbalance_factor(&times);
        assert!((c - f).abs() < 1e-12);
    }

    #[test]
    fn capacity_ratio_uneven_sizes() {
        // Writer 0: 100 B in 1 s = 100 B/s; writer 1: 400 B in 2 s = 200 B/s.
        let c = capacity_ratio(&[100, 400], &[1.0, 2.0]);
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no writer times")]
    fn empty_panics() {
        imbalance_factor(&[]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_time_panics() {
        imbalance_factor(&[0.0, 1.0]);
    }
}
