//! The co-simulation driver: couples a vector of actors with a
//! [`StorageSystem`] under one global clock.
//!
//! Event sources are (a) the cluster event queue (message deliveries,
//! timers) and (b) the storage system's internal schedule (completions,
//! noise flips). The driver always advances to the earlier of the two; on
//! ties, storage completions dispatch first (a write that finishes at the
//! same instant a message arrives is observed before the message — the
//! choice is arbitrary but fixed, which is what determinism requires).

use simcore::{EventQueue, Rng, SimTime, SplitMix64};
use storesim::{MachineConfig, StorageSystem};

use crate::actor::{Actor, Ctx, IoComplete, Rank};
use crate::faultplane::FaultPlane;

/// Boxed message-labelling closure used by traces. Lives inside
/// [`TraceState`], so it exists only while tracing is enabled — the
/// non-traced path carries a single `None` and allocates nothing.
type MsgLabeler<M> = Box<dyn Fn(&M) -> String>;

/// Everything tracing needs, bundled so the whole apparatus (record
/// buffer, capacity, optional labeller) is one `Option` in the
/// simulation and absent entirely when tracing is off.
struct TraceState<M> {
    buf: Vec<TraceRecord>,
    cap: usize,
    labeler: Option<MsgLabeler<M>>,
}

impl<M> TraceState<M> {
    fn new(cap: usize, labeler: Option<MsgLabeler<M>>) -> Self {
        TraceState {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            labeler,
        }
    }

    fn label(&self, msg: &M) -> String {
        match &self.labeler {
            Some(f) => f(msg),
            None => std::any::type_name::<M>()
                .rsplit("::")
                .next()
                .unwrap_or("msg")
                .to_string(),
        }
    }
}

/// Internal cluster events.
#[derive(Debug)]
pub enum PendingEvent<M> {
    /// A message in flight.
    Deliver {
        /// Sender.
        from: Rank,
        /// Receiver.
        to: Rank,
        /// Payload.
        msg: M,
    },
    /// A timer set by `rank`.
    Timer {
        /// Owner of the timer.
        rank: Rank,
        /// Actor-chosen discriminator.
        tag: u64,
    },
    /// A scheduled rank death (fault injection).
    Kill {
        /// The rank that dies.
        rank: Rank,
    },
}

/// One recorded simulation event (tracing enabled via
/// [`Simulation::enable_trace`]). The managed-io `fig4_walkthrough`
/// example uses this to print the adaptive protocol's message flow — the
/// observable form of the paper's Fig. 4 organisation.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When the event was dispatched.
    pub at: SimTime,
    /// Receiving/owning rank.
    pub rank: Rank,
    /// Human-readable description.
    pub what: String,
}

/// Outcome of a completed simulation run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Number of cluster events (messages + timers) processed.
    pub cluster_events: u64,
    /// Number of storage completions delivered to actors.
    pub io_completions: u64,
    /// Storage completions addressed to killed ranks, dropped instead of
    /// delivered. Counted separately — they were never observed by any
    /// actor, so folding them into `io_completions` (as an earlier
    /// version did) over-reported delivered IO under rank-kill faults.
    pub io_evaporated: u64,
}

/// Wall-time phase breakdown of the coupled driver loop, captured when
/// [`Simulation::enable_driver_profiling`] is on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DriverProfile {
    /// Seconds dispatching cluster events (messages, timers, kills) into
    /// actors.
    pub cluster_dispatch_s: f64,
    /// Seconds advancing the storage system (the parallelizable half).
    pub storage_drain_s: f64,
    /// Seconds delivering harvested storage completions into actors.
    pub harvest_deliver_s: f64,
    /// Driver loop rounds executed.
    pub rounds: u64,
}

#[derive(Debug, Default)]
struct DriverProf {
    cluster: std::time::Duration,
    drain: std::time::Duration,
    deliver: std::time::Duration,
    rounds: u64,
}

/// Process-wide default for the driver loop choice: protocol lookahead
/// is ON unless `MANAGED_IO_LOOKAHEAD=0`. Read once; per-simulation
/// overrides go through [`Simulation::set_lookahead`].
fn lookahead_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("MANAGED_IO_LOOKAHEAD").map_or(true, |v| v != "0"))
}

/// The simulation: actors + storage under one clock.
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    storage: StorageSystem,
    queue: EventQueue<PendingEvent<A::Msg>>,
    rng: Rng,
    msg_latency: f64,
    msg_bandwidth: f64,
    started: bool,
    finished: u64,
    /// Installed message-layer fault injector, if any.
    faults: Option<FaultPlane>,
    /// Ranks that have been killed (no further event dispatch).
    dead: Vec<bool>,
    /// Tracing apparatus (buffer + capacity + optional labeller); `None`
    /// — and allocation-free — unless a trace was enabled.
    trace: Option<TraceState<A::Msg>>,
    /// Reusable harvest buffer handed to `StorageSystem::advance_into` on
    /// every storage wake (the hot loop allocates nothing).
    io_buf: Vec<storesim::system::StorageCompletion>,
    /// Per-simulation driver loop choice; `None` follows the
    /// `MANAGED_IO_LOOKAHEAD` environment default (on).
    lookahead: Option<bool>,
    /// Driver phase profile, `None` (zero overhead) unless enabled.
    dprof: Option<Box<DriverProf>>,
}

impl<A: Actor> Simulation<A> {
    /// Build a simulation over `actors` (rank i = index i) on a machine.
    /// Storage noise and the shared RNG derive from `seed`. Accepts an
    /// owned config or a shared `Arc<MachineConfig>`.
    pub fn new(cfg: impl Into<std::sync::Arc<MachineConfig>>, actors: Vec<A>, seed: u64) -> Self {
        let cfg = cfg.into();
        let storage = StorageSystem::new(std::sync::Arc::clone(&cfg), seed);
        Self::with_storage(cfg, actors, seed, storage)
    }

    /// Like [`Simulation::new`], but adopt a pre-built storage system —
    /// used when files must be created (and their ids handed to actors)
    /// before the run starts.
    pub fn with_storage(
        cfg: impl Into<std::sync::Arc<MachineConfig>>,
        actors: Vec<A>,
        seed: u64,
        storage: StorageSystem,
    ) -> Self {
        let cfg = cfg.into();
        let msg_latency = cfg.msg_latency;
        let msg_bandwidth = cfg.msg_bandwidth;
        let mut seeder = SplitMix64::new(seed ^ 0xC1A5_7E25_11D3_0001);
        let rng = seeder.stream();
        let dead = vec![false; actors.len()];
        Simulation {
            actors,
            storage,
            queue: EventQueue::new(),
            rng,
            msg_latency,
            msg_bandwidth,
            started: false,
            finished: 0,
            faults: None,
            dead,
            trace: None,
            io_buf: Vec::new(),
            lookahead: None,
            dprof: None,
        }
    }

    /// Force the driver loop for this simulation: `true` = protocol
    /// lookahead (wide coupled macro-windows), `false` = the
    /// one-event-at-a-time stepwise loop. Overrides the
    /// `MANAGED_IO_LOOKAHEAD` environment default. Both loops produce
    /// byte-identical runs; the choice only affects wall-clock time.
    pub fn set_lookahead(&mut self, on: bool) {
        self.lookahead = Some(on);
    }

    /// Which driver loop this simulation will run: the explicit
    /// [`Simulation::set_lookahead`] override if set, else the
    /// `MANAGED_IO_LOOKAHEAD` environment default (on unless `=0`).
    pub fn lookahead_enabled(&self) -> bool {
        self.lookahead.unwrap_or_else(lookahead_default)
    }

    /// Start collecting a wall-time phase breakdown of the driver loop
    /// (see [`Simulation::driver_profile`]).
    pub fn enable_driver_profiling(&mut self) {
        self.dprof = Some(Box::default());
    }

    /// The driver phase profile collected so far, if enabled.
    pub fn driver_profile(&self) -> Option<DriverProfile> {
        self.dprof.as_ref().map(|p| DriverProfile {
            cluster_dispatch_s: p.cluster.as_secs_f64(),
            storage_drain_s: p.drain.as_secs_f64(),
            harvest_deliver_s: p.deliver.as_secs_f64(),
            rounds: p.rounds,
        })
    }

    /// Tear down the simulation, recovering the storage system (with all
    /// its capacity — queues, heaps, scratch buffers) so a sweep can
    /// [`StorageSystem::reset`] and reuse it for the next seed.
    pub fn into_storage(self) -> StorageSystem {
        self.storage
    }

    /// Install a message-layer fault plane (drop/delay/duplicate per link,
    /// scheduled rank kills). Call before running.
    pub fn install_fault_plane(&mut self, plane: FaultPlane) {
        for &(at, rank) in plane.kills() {
            self.queue.schedule(at, PendingEvent::Kill { rank });
        }
        self.faults = Some(plane);
    }

    /// Whether `rank` has been killed by the fault plane.
    pub fn is_dead(&self, rank: Rank) -> bool {
        self.dead[rank.0 as usize]
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.actors.len()
    }

    /// Access an actor (e.g. to read results after a run).
    pub fn actor(&self, rank: Rank) -> &A {
        &self.actors[rank.0 as usize]
    }

    /// Iterate all actors (results collection).
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Mutable access to the storage system (pre-run setup: file creation,
    /// background interference streams).
    pub fn storage_mut(&mut self) -> &mut StorageSystem {
        &mut self.storage
    }

    /// Read access to the storage system.
    pub fn storage(&self) -> &StorageSystem {
        &self.storage
    }

    fn dispatch_start(&mut self) {
        let Simulation {
            actors,
            storage,
            queue,
            rng,
            msg_latency,
            msg_bandwidth,
            finished,
            faults,
            ..
        } = self;
        for (i, a) in actors.iter_mut().enumerate() {
            let mut ctx = Ctx {
                now: SimTime::ZERO,
                rank: Rank(i as u32),
                storage,
                queue,
                rng,
                msg_latency: *msg_latency,
                msg_bandwidth: *msg_bandwidth,
                finished,
                faults,
            };
            a.on_start(&mut ctx);
        }
    }

    /// How many [`Ctx::finish`] signals actors have raised so far.
    pub fn finish_count(&self) -> u64 {
        self.finished
    }

    /// Record up to `cap` dispatched events (message deliveries, timers,
    /// IO completions) for later inspection via
    /// [`Simulation::take_trace`]. Messages are labelled with their type
    /// name; use [`Simulation::enable_trace_with`] for richer labels.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(TraceState::new(cap, None));
    }

    /// Like [`Simulation::enable_trace`], with a custom message labeller
    /// (e.g. `|m| format!("{m:?}")` for `Debug` messages).
    pub fn enable_trace_with(&mut self, cap: usize, labeler: impl Fn(&A::Msg) -> String + 'static) {
        self.trace = Some(TraceState::new(cap, Some(Box::new(labeler))));
    }

    /// Drain the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace.take().map(|t| t.buf).unwrap_or_default()
    }

    fn record(trace: &mut Option<TraceState<A::Msg>>, at: SimTime, rank: Rank, what: String) {
        if let Some(t) = trace {
            if t.buf.len() < t.cap {
                t.buf.push(TraceRecord { at, rank, what });
            }
        }
    }

    /// Run until `finish_target` actors have called [`Ctx::finish`], both
    /// event sources are exhausted, or `deadline` passes — whichever comes
    /// first. The finish target is the only reliable stop condition on
    /// machines with perpetual background activity (production noise,
    /// interference streams), where events never run dry.
    pub fn run_until(&mut self, finish_target: u64, deadline: SimTime) -> RunStats {
        self.run_inner(Some(finish_target), deadline)
    }

    /// Run until both event sources are exhausted or `deadline` passes.
    /// Returns run statistics.
    pub fn run(&mut self, deadline: SimTime) -> RunStats {
        self.run_inner(None, deadline)
    }

    fn run_inner(&mut self, finish_target: Option<u64>, deadline: SimTime) -> RunStats {
        if !self.started {
            self.started = true;
            self.dispatch_start();
        }
        let mut stats = RunStats {
            end_time: SimTime::ZERO,
            cluster_events: 0,
            io_completions: 0,
            io_evaporated: 0,
        };
        if let Some(t) = finish_target {
            if self.finished >= t {
                return stats;
            }
        }
        if self.lookahead_enabled() {
            self.run_lookahead(finish_target, deadline, &mut stats);
        } else {
            self.run_stepwise(finish_target, deadline, &mut stats);
        }
        stats
    }

    /// Deliver one harvested storage completion to its rank (or count it
    /// as evaporated if the rank is dead). Shared by both driver loops.
    fn dispatch_completion(
        &mut self,
        c: storesim::system::StorageCompletion,
        stats: &mut RunStats,
    ) {
        let rank = Rank((c.tag >> 32) as u32);
        if self.dead[rank.0 as usize] {
            // Completions for killed ranks evaporate, undelivered.
            stats.io_evaporated += 1;
            return;
        }
        stats.io_completions += 1;
        let done = IoComplete {
            tag: (c.tag & 0xFFFF_FFFF) as u32,
            bytes: c.bytes,
            submitted: c.submitted,
            finished: c.finished,
            kind: c.kind,
            error: c.error,
        };
        let Simulation {
            actors,
            storage,
            queue,
            rng,
            msg_latency,
            msg_bandwidth,
            finished,
            faults,
            trace,
            ..
        } = self;
        Self::record(
            trace,
            c.finished,
            rank,
            format!("io-complete {:?} {} B (tag {})", done.kind, done.bytes, done.tag),
        );
        let mut ctx = Ctx {
            now: c.finished,
            rank,
            storage,
            queue,
            rng,
            msg_latency: *msg_latency,
            msg_bandwidth: *msg_bandwidth,
            finished,
            faults,
        };
        actors[rank.0 as usize].on_io_complete(done, &mut ctx);
    }

    /// Dispatch one popped cluster event into its actor. Shared by both
    /// driver loops.
    fn dispatch_cluster_event(
        &mut self,
        at: SimTime,
        ev: PendingEvent<A::Msg>,
        stats: &mut RunStats,
    ) {
        stats.cluster_events += 1;
        let Simulation {
            actors,
            storage,
            queue,
            rng,
            msg_latency,
            msg_bandwidth,
            finished,
            faults,
            dead,
            trace,
            ..
        } = self;
        match ev {
            PendingEvent::Deliver { from, to, msg } => {
                if dead[to.0 as usize] {
                    // Killed ranks receive nothing.
                } else {
                    if let Some(t) = trace.as_ref() {
                        let label = t.label(&msg);
                        Self::record(trace, at, to, format!("recv from {}: {label}", from.0));
                    }
                    let mut ctx = Ctx {
                        now: at,
                        rank: to,
                        storage,
                        queue,
                        rng,
                        msg_latency: *msg_latency,
                        msg_bandwidth: *msg_bandwidth,
                        finished,
                        faults,
                    };
                    actors[to.0 as usize].on_message(from, msg, &mut ctx);
                }
            }
            PendingEvent::Timer { rank, tag } => {
                if !dead[rank.0 as usize] {
                    Self::record(trace, at, rank, format!("timer {tag}"));
                    let mut ctx = Ctx {
                        now: at,
                        rank,
                        storage,
                        queue,
                        rng,
                        msg_latency: *msg_latency,
                        msg_bandwidth: *msg_bandwidth,
                        finished,
                        faults,
                    };
                    actors[rank.0 as usize].on_timer(tag, &mut ctx);
                }
            }
            PendingEvent::Kill { rank } => {
                Self::record(trace, at, rank, "killed".to_string());
                dead[rank.0 as usize] = true;
            }
        }
    }

    /// The pre-lookahead driver loop: advance to the earlier of the two
    /// event sources, one instant at a time. Kept as the pinning
    /// reference for the lookahead loop (and selectable via
    /// `MANAGED_IO_LOOKAHEAD=0` / [`Simulation::set_lookahead`]).
    fn run_stepwise(&mut self, finish_target: Option<u64>, deadline: SimTime, stats: &mut RunStats) {
        loop {
            if let Some(t) = finish_target {
                if self.finished >= t {
                    break;
                }
            }
            if let Some(p) = &mut self.dprof {
                p.rounds += 1;
            }
            let tq = self.queue.peek_time();
            let ts = self.storage.next_event_time();
            let t = match (tq, ts) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if t > deadline {
                break;
            }
            stats.end_time = t;
            // Storage first on ties.
            if ts.is_some_and(|s| s <= t) {
                let mut completions = std::mem::take(&mut self.io_buf);
                completions.clear();
                let t0 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                self.storage.advance_into(t, &mut completions);
                if let (Some(t0), Some(p)) = (t0, self.dprof.as_mut()) {
                    p.drain += t0.elapsed();
                }
                let t1 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                for c in completions.drain(..) {
                    self.dispatch_completion(c, stats);
                }
                if let (Some(t1), Some(p)) = (t1, self.dprof.as_mut()) {
                    p.deliver += t1.elapsed();
                }
                self.io_buf = completions;
                // Re-evaluate sources; the storage advance may have been a
                // pure noise flip producing no completions.
                if self.queue.peek_time() != tq || tq != Some(t) {
                    continue;
                }
            }
            // Deliver at most one cluster event per iteration if it is due.
            if tq == Some(t) {
                let (at, ev) = self.queue.pop().expect("peeked event exists");
                let t0 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                self.dispatch_cluster_event(at, ev, stats);
                if let (Some(t0), Some(p)) = (t0, self.dprof.as_mut()) {
                    p.cluster += t0.elapsed();
                }
            }
        }
    }

    /// **Protocol lookahead loop.** Between `now` and the next cluster
    /// event no actor can run, so `min(next cluster event, deadline)` is
    /// a sound lookahead horizon for the storage system:
    /// [`StorageSystem::advance_until_completion`] bulk-drains lane-local
    /// events (noise flips, background renewals, stream wakes) across the
    /// whole window — in parallel on the shard pool — and stops only at
    /// the first instant foreground completions surface. Delivery order,
    /// every stochastic draw, `end_time` and all statistics are
    /// byte-identical to [`Self::run_stepwise`]; only wall-clock time
    /// changes.
    fn run_lookahead(
        &mut self,
        finish_target: Option<u64>,
        deadline: SimTime,
        stats: &mut RunStats,
    ) {
        loop {
            if let Some(t) = finish_target {
                if self.finished >= t {
                    break;
                }
            }
            if let Some(p) = &mut self.dprof {
                p.rounds += 1;
            }
            let tq = self.queue.peek_time();
            let horizon = match tq {
                Some(t) if t <= deadline => t,
                _ => deadline,
            };
            let mut completions = std::mem::take(&mut self.io_buf);
            completions.clear();
            // O(1) cached probe first: in message-dense stretches the
            // storage system is quiet until past the horizon, and the
            // round must cost what a stepwise round costs — one compare —
            // not a full window-machinery entry.
            let ret = if self.storage.next_event_time().is_some_and(|s| s <= horizon) {
                let t0 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                let ret = self.storage.advance_until_completion(horizon, &mut completions);
                if let (Some(t0), Some(p)) = (t0, self.dprof.as_mut()) {
                    p.drain += t0.elapsed();
                }
                ret
            } else {
                None
            };
            if let Some(t) = ret {
                stats.end_time = t;
            }
            if completions.is_empty() {
                self.io_buf = completions;
                // Storage is quiet until past the horizon: the cluster
                // event (if due) is next, else the run is over.
                match tq {
                    Some(t) if t <= deadline => {
                        stats.end_time = t;
                        let (at, ev) = self.queue.pop().expect("peeked event exists");
                        let t0 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                        self.dispatch_cluster_event(at, ev, stats);
                        if let (Some(t0), Some(p)) = (t0, self.dprof.as_mut()) {
                            p.cluster += t0.elapsed();
                        }
                    }
                    _ => break,
                }
            } else {
                let t1 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                for c in completions.drain(..) {
                    self.dispatch_completion(c, stats);
                }
                if let (Some(t1), Some(p)) = (t1, self.dprof.as_mut()) {
                    p.deliver += t1.elapsed();
                }
                self.io_buf = completions;
                // Stepwise parity: a cluster event due at exactly the
                // delivery instant — with the queue head unmoved by the
                // handlers — dispatches in the same round, *before* any
                // storage event a handler may have scheduled at that
                // same instant.
                if tq.is_some() && tq == ret && self.queue.peek_time() == tq {
                    let (at, ev) = self.queue.pop().expect("peeked event exists");
                    let t0 = self.dprof.as_ref().map(|_| std::time::Instant::now());
                    self.dispatch_cluster_event(at, ev, stats);
                    if let (Some(t0), Some(p)) = (t0, self.dprof.as_mut()) {
                        p.cluster += t0.elapsed();
                    }
                }
            }
        }
    }

    /// Run with a generous default deadline (10^7 simulated seconds) —
    /// effectively "run to completion" for well-formed protocols; a stuck
    /// protocol shows up as hitting the deadline, which callers assert on.
    pub fn run_to_completion(&mut self) -> RunStats {
        self.run(SimTime::from_secs_f64(1.0e7))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;
    use simcore::SimDuration;
    use storesim::layout::{OstId, StripeSpec};
    use storesim::params::testbed;

    /// Ping-pong: rank 0 sends a counter to rank 1 and back N times.
    struct PingPong {
        hits: u32,
        limit: u32,
        last_seen: Option<SimTime>,
    }

    impl Actor for PingPong {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.rank() == Rank(0) {
                ctx.send_control(Rank(1), 0);
            }
        }
        fn on_message(&mut self, from: Rank, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.hits += 1;
            self.last_seen = Some(ctx.now());
            if msg < self.limit {
                ctx.send_control(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mk = || PingPong {
            hits: 0,
            limit: 9,
            last_seen: None,
        };
        let mut sim = Simulation::new(testbed(), vec![mk(), mk()], 1);
        let stats = sim.run_to_completion();
        // msgs 0..=9 → 10 deliveries total, 5 per rank.
        assert_eq!(stats.cluster_events, 10);
        assert_eq!(sim.actor(Rank(0)).hits + sim.actor(Rank(1)).hits, 10);
        // Each hop costs at least the base latency.
        let end = sim.actor(Rank(1)).last_seen.unwrap();
        assert!(end.as_secs_f64() >= 9.0 * testbed().msg_latency);
    }

    /// Writer: writes one block on start, records the completion.
    struct OneWrite {
        bytes: u64,
        done: Option<IoComplete>,
    }

    impl Actor for OneWrite {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            let r = ctx.rank().0 as usize;
            ctx.write_ost(OstId(r % 8), self.bytes, 7);
        }
        fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_io_complete(&mut self, done: IoComplete, _ctx: &mut Ctx<'_, ()>) {
            assert_eq!(done.tag, 7);
            self.done = Some(done);
        }
    }

    #[test]
    fn io_completions_route_to_the_right_rank() {
        let actors: Vec<OneWrite> = (0..16)
            .map(|i| OneWrite {
                bytes: (i + 1) * MIB,
                done: None,
            })
            .collect();
        let mut sim = Simulation::new(testbed(), actors, 2);
        let stats = sim.run_to_completion();
        assert_eq!(stats.io_completions, 16);
        for (i, a) in sim.actors().enumerate() {
            let d = a.done.expect("every rank completed");
            assert_eq!(d.bytes, (i as u64 + 1) * MIB);
            assert!(d.finished > d.submitted);
        }
    }

    /// Timer echo.
    struct TimerUser {
        fired: Vec<u64>,
    }
    impl Actor for TimerUser {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            ctx.set_timer(SimDuration::from_millis(1), 2);
        }
        fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut Ctx<'_, ()>) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(testbed(), vec![TimerUser { fired: vec![] }], 3);
        sim.run_to_completion();
        assert_eq!(sim.actor(Rank(0)).fired, vec![2, 1]);
    }

    /// Rank 0 writes, then messages rank 1, which writes in response —
    /// exercises interleaved IO and messaging.
    struct Chained {
        wrote: bool,
        finished_at: Option<SimTime>,
    }
    impl Actor for Chained {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.rank() == Rank(0) {
                let f = ctx.create_file("chain0", StripeSpec::Pinned(vec![OstId(0)]));
                ctx.write_file(f, 0, 4 * MIB, 0);
                self.wrote = true;
            }
        }
        fn on_message(&mut self, _f: Rank, _m: (), ctx: &mut Ctx<'_, ()>) {
            let f = ctx.create_file("chain1", StripeSpec::Pinned(vec![OstId(1)]));
            ctx.write_file(f, 0, 4 * MIB, 1);
            self.wrote = true;
        }
        fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, ()>) {
            self.finished_at = Some(done.finished);
            if ctx.rank() == Rank(0) {
                ctx.send_control(Rank(1), ());
            }
        }
    }

    #[test]
    fn io_and_messages_interleave() {
        let mk = || Chained {
            wrote: false,
            finished_at: None,
        };
        let mut sim = Simulation::new(testbed(), vec![mk(), mk()], 4);
        sim.run_to_completion();
        let t0 = sim.actor(Rank(0)).finished_at.unwrap();
        let t1 = sim.actor(Rank(1)).finished_at.unwrap();
        assert!(sim.actor(Rank(1)).wrote);
        assert!(t1 > t0, "rank 1 wrote strictly after rank 0 finished");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let actors: Vec<OneWrite> = (0..32)
                .map(|i| OneWrite {
                    bytes: (i % 7 + 1) * MIB,
                    done: None,
                })
                .collect();
            let mut sim = Simulation::new(testbed(), actors, seed);
            sim.run_to_completion();
            sim.actors()
                .map(|a| a.done.unwrap().finished.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn deadline_stops_early() {
        let actors = vec![OneWrite {
            bytes: 1024 * MIB,
            done: None,
        }];
        let mut sim = Simulation::new(testbed(), actors, 6);
        let stats = sim.run(SimTime::from_secs_f64(0.001));
        assert_eq!(stats.io_completions, 0);
        assert!(sim.actor(Rank(0)).done.is_none());
    }

    #[test]
    fn killed_rank_receives_nothing_further() {
        // Ping-pong with rank 1 killed at t=0.05 s: the volley stops and
        // the run terminates without hanging (queue simply drains).
        let mk = || PingPong {
            hits: 0,
            limit: 1_000_000,
            last_seen: None,
        };
        let mut sim = Simulation::new(testbed(), vec![mk(), mk()], 7);
        sim.install_fault_plane(crate::FaultPlane::new(7).kill_at(0.05, 1));
        sim.run(SimTime::from_secs_f64(10.0));
        assert!(sim.is_dead(Rank(1)));
        let last = sim.actor(Rank(1)).last_seen.unwrap();
        assert!(
            last.as_secs_f64() <= 0.05,
            "rank 1 saw a message after its death: {last:?}"
        );
        // Rank 0's last receive is at most one hop after the kill.
        let last0 = sim.actor(Rank(0)).last_seen.unwrap();
        assert!(last0.as_secs_f64() <= 0.05 + 2.0 * testbed().msg_latency + 0.01);
    }

    #[test]
    fn duplicated_messages_are_delivered_twice() {
        /// Counts raw deliveries of a single fired message.
        struct CountRecv {
            seen: u32,
        }
        impl Actor for CountRecv {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.rank() == Rank(0) {
                    ctx.send_control(Rank(1), ());
                }
            }
            fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {
                self.seen += 1;
            }
        }
        let mut sim = Simulation::new(
            testbed(),
            vec![CountRecv { seen: 0 }, CountRecv { seen: 0 }],
            8,
        );
        sim.install_fault_plane(
            crate::FaultPlane::new(8)
                .with_default(crate::LinkFaults::flaky(1.0, 0.0, 0.0)),
        );
        sim.run_to_completion();
        assert_eq!(sim.actor(Rank(1)).seen, 2, "dup_p=1 must deliver twice");
    }

    #[test]
    fn killed_rank_completions_evaporate_not_complete() {
        // Rank 0 issues a slow 1 GiB write and is killed long before it
        // finishes. The completion must be counted as evaporated, not as
        // delivered — the old driver bumped `io_completions` *before* the
        // dead-rank check and over-reported. Both driver loops must agree.
        for lookahead in [false, true] {
            let actors = vec![OneWrite {
                bytes: 1024 * MIB,
                done: None,
            }];
            let mut sim = Simulation::new(testbed(), actors, 11);
            sim.set_lookahead(lookahead);
            sim.install_fault_plane(crate::FaultPlane::new(11).kill_at(0.001, 0));
            let stats = sim.run(SimTime::from_secs_f64(1.0e4));
            assert!(sim.is_dead(Rank(0)));
            assert_eq!(
                stats.io_completions, 0,
                "lookahead={lookahead}: a dead rank's completion was counted as delivered"
            );
            assert_eq!(
                stats.io_evaporated, 1,
                "lookahead={lookahead}: the evaporated completion went untallied"
            );
            assert!(sim.actor(Rank(0)).done.is_none());
        }
    }

    #[test]
    fn lookahead_driver_matches_stepwise_driver() {
        // Same workload, both driver loops: every per-rank completion
        // instant and every statistic must be byte-identical. Includes
        // messaging (Chained) so cluster events and IO interleave.
        let run = |lookahead: bool| {
            let mut actors: Vec<OneWrite> = (0..24)
                .map(|i| OneWrite {
                    bytes: (i % 9 + 1) * MIB,
                    done: None,
                })
                .collect();
            actors.push(OneWrite {
                bytes: 64 * MIB,
                done: None,
            });
            let mut sim = Simulation::new(testbed(), actors, 13);
            sim.set_lookahead(lookahead);
            let stats = sim.run_to_completion();
            let times: Vec<u64> = sim
                .actors()
                .map(|a| a.done.unwrap().finished.as_nanos())
                .collect();
            (times, stats.end_time.as_nanos(), stats.cluster_events, stats.io_completions)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn lookahead_matches_stepwise_with_messaging_and_kills() {
        // Interleaved IO + messaging + a mid-run kill: the tie-dispatch
        // rule (cluster event due at exactly a delivery instant) and the
        // evaporation path both get exercised.
        let run = |lookahead: bool| {
            let mk = || Chained {
                wrote: false,
                finished_at: None,
            };
            let mut sim = Simulation::new(testbed(), vec![mk(), mk()], 17);
            sim.set_lookahead(lookahead);
            let stats = sim.run_to_completion();
            (
                sim.actor(Rank(0)).finished_at.map(|t| t.as_nanos()),
                sim.actor(Rank(1)).finished_at.map(|t| t.as_nanos()),
                stats.end_time.as_nanos(),
                stats.cluster_events,
                stats.io_completions,
                stats.io_evaporated,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let run = || {
            let mk = || PingPong {
                hits: 0,
                limit: 50,
                last_seen: None,
            };
            let mut sim = Simulation::new(testbed(), vec![mk(), mk()], 9);
            sim.install_fault_plane(
                crate::FaultPlane::new(9)
                    .with_default(crate::LinkFaults::flaky(0.2, 0.3, 0.002)),
            );
            sim.run(SimTime::from_secs_f64(100.0));
            (
                sim.actor(Rank(0)).hits,
                sim.actor(Rank(1)).hits,
                sim.actor(Rank(1)).last_seen.map(|t| t.as_nanos()),
            )
        };
        assert_eq!(run(), run());
    }
}
