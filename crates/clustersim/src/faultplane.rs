//! Seeded fault injection on the message layer.
//!
//! A [`FaultPlane`] sits between [`Ctx::send`](crate::Ctx::send) and the
//! event queue: per sender→receiver link it can **drop**, **delay** or
//! **duplicate** messages, and it can **kill** ranks at scheduled times
//! (a killed rank receives no further messages, timers or IO completions).
//! All randomness comes from the plane's own seeded RNG stream, so faulted
//! runs remain byte-identical per seed and the main simulation RNG is
//! untouched whether or not a plane is installed.

use simcore::{Rng, SimDuration, SimTime};

use crate::actor::Rank;

/// Fault probabilities for one directed link (or the default for all).
#[derive(Clone, Copy, Debug)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is delayed beyond the base network cost.
    pub delay_p: f64,
    /// Mean of the exponential extra delay, in seconds.
    pub delay_mean_secs: f64,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        delay_mean_secs: 0.0,
    };

    /// A lossy-but-live link profile: occasional duplicates and delays.
    /// (No drops: the adaptive protocol tolerates duplicated and delayed
    /// control traffic end-to-end; dropped traffic surfaces through the
    /// runner watchdog instead.)
    pub fn flaky(dup_p: f64, delay_p: f64, delay_mean_secs: f64) -> LinkFaults {
        LinkFaults {
            drop_p: 0.0,
            dup_p,
            delay_p,
            delay_mean_secs,
        }
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// What the plane decided to do with one message.
#[derive(Clone, Copy, Debug)]
pub enum SendFate {
    /// The message vanishes.
    Drop,
    /// The message is delivered with `extra` delay on top of the network
    /// cost; if `duplicate` is set, a second copy arrives with that extra
    /// delay too.
    Deliver {
        /// Extra delay of the primary copy.
        extra: SimDuration,
        /// Extra delay of the duplicate copy, if one is produced.
        duplicate: Option<SimDuration>,
    },
}

/// Seeded message-layer fault injector plus rank-kill schedule.
#[derive(Debug)]
pub struct FaultPlane {
    rng: Rng,
    default_rule: LinkFaults,
    /// Per-link overrides, linearly scanned (fault sets are small).
    links: Vec<((u32, u32), LinkFaults)>,
    kills: Vec<(SimTime, Rank)>,
}

impl FaultPlane {
    /// A plane with healthy defaults; compose with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            rng: Rng::new(seed ^ 0xFA17_91A7_E00D_CAFE),
            default_rule: LinkFaults::NONE,
            links: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// Set the fault rule applied to every link without an override.
    pub fn with_default(mut self, rule: LinkFaults) -> Self {
        self.default_rule = rule;
        self
    }

    /// Override the rule for the directed link `from → to`.
    pub fn link(mut self, from: u32, to: u32, rule: LinkFaults) -> Self {
        self.links.push(((from, to), rule));
        self
    }

    /// Schedule `rank` to die at `at_secs`: from then on it receives no
    /// messages, timers or IO completions, and never acts again.
    pub fn kill_at(mut self, at_secs: f64, rank: u32) -> Self {
        self.kills.push((SimTime::from_secs_f64(at_secs), Rank(rank)));
        self
    }

    pub(crate) fn kills(&self) -> &[(SimTime, Rank)] {
        &self.kills
    }

    /// Decide the fate of one message on `from → to`.
    pub(crate) fn decide(&mut self, from: Rank, to: Rank) -> SendFate {
        let rule = self
            .links
            .iter()
            .find(|&&((f, t), _)| f == from.0 && t == to.0)
            .map(|&(_, r)| r)
            .unwrap_or(self.default_rule);
        if rule.drop_p > 0.0 && self.rng.chance(rule.drop_p) {
            return SendFate::Drop;
        }
        let extra = if rule.delay_p > 0.0 && self.rng.chance(rule.delay_p) {
            SimDuration::from_secs_f64(self.rng.exp(rule.delay_mean_secs.max(1e-9)))
        } else {
            SimDuration::ZERO
        };
        let duplicate = if rule.dup_p > 0.0 && self.rng.chance(rule.dup_p) {
            Some(SimDuration::from_secs_f64(
                self.rng.exp(rule.delay_mean_secs.max(1e-9)),
            ))
        } else {
            None
        };
        SendFate::Deliver { extra, duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plane_always_delivers_cleanly() {
        let mut p = FaultPlane::new(1);
        for _ in 0..100 {
            match p.decide(Rank(0), Rank(1)) {
                SendFate::Deliver { extra, duplicate } => {
                    assert_eq!(extra, SimDuration::ZERO);
                    assert!(duplicate.is_none());
                }
                SendFate::Drop => panic!("healthy plane dropped a message"),
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut p = FaultPlane::new(2).with_default(LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::NONE
        });
        let drops = (0..1000)
            .filter(|_| matches!(p.decide(Rank(0), Rank(1)), SendFate::Drop))
            .count();
        assert!((350..650).contains(&drops), "got {drops} drops of 1000");
    }

    #[test]
    fn link_overrides_beat_default() {
        let mut p = FaultPlane::new(3)
            .with_default(LinkFaults::NONE)
            .link(2, 3, LinkFaults {
                drop_p: 1.0,
                ..LinkFaults::NONE
            });
        assert!(matches!(p.decide(Rank(2), Rank(3)), SendFate::Drop));
        assert!(matches!(
            p.decide(Rank(3), Rank(2)),
            SendFate::Deliver { .. }
        ));
        assert!(matches!(
            p.decide(Rank(0), Rank(1)),
            SendFate::Deliver { .. }
        ));
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut p = FaultPlane::new(seed).with_default(LinkFaults {
                drop_p: 0.3,
                dup_p: 0.2,
                delay_p: 0.4,
                delay_mean_secs: 0.01,
            });
            (0..200)
                .map(|i| format!("{:?}", p.decide(Rank(i % 4), Rank((i + 1) % 4))))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn kill_schedule_is_recorded() {
        let p = FaultPlane::new(4).kill_at(1.5, 3).kill_at(0.5, 1);
        assert_eq!(p.kills().len(), 2);
        assert_eq!(p.kills()[0].1, Rank(3));
    }
}
