//! Rank-placement helpers.
//!
//! The paper's role assignment leans on sequential rank-to-core placement:
//! "process IDs are typically assigned sequentially to cores in a node,
//! grouping them as illustrated reduces the network contention on the
//! node" (§III-B). These helpers compute node membership and the
//! contiguous writer groups used by the adaptive method.

use crate::actor::Rank;

/// Which node a rank lives on under sequential placement.
pub fn node_of(rank: Rank, cores_per_node: usize) -> usize {
    assert!(cores_per_node > 0);
    rank.0 as usize / cores_per_node
}

/// Split `n` ranks into `groups` contiguous groups as evenly as possible
/// (the first `n % groups` groups get one extra rank). Returns half-open
/// rank ranges. This is the writer→sub-coordinator grouping of Fig. 4.
pub fn contiguous_groups(n: usize, groups: usize) -> Vec<std::ops::Range<u32>> {
    assert!(groups > 0 && n >= groups, "need at least one rank per group");
    let base = n / groups;
    let extra = n % groups;
    let mut out = Vec::with_capacity(groups);
    let mut start = 0u32;
    for g in 0..groups {
        let len = base + usize::from(g < extra);
        out.push(start..start + len as u32);
        start += len as u32;
    }
    out
}

/// Ceil(log2(n)) — the hop count of tree-structured collectives, used to
/// cost MPI_Scan-style offset exchanges in the MPI-IO baseline.
pub fn log2_ceil(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_placement_is_sequential() {
        assert_eq!(node_of(Rank(0), 12), 0);
        assert_eq!(node_of(Rank(11), 12), 0);
        assert_eq!(node_of(Rank(12), 12), 1);
        assert_eq!(node_of(Rank(25), 12), 2);
    }

    #[test]
    fn groups_cover_all_ranks_without_overlap() {
        for (n, g) in [(16, 4), (17, 4), (512, 8), (100, 7), (5, 5)] {
            let groups = contiguous_groups(n, g);
            assert_eq!(groups.len(), g);
            let mut next = 0u32;
            for r in &groups {
                assert_eq!(r.start, next, "contiguous");
                assert!(r.end > r.start, "non-empty");
                next = r.end;
            }
            assert_eq!(next as usize, n, "full coverage");
        }
    }

    #[test]
    fn groups_are_balanced() {
        let groups = contiguous_groups(18, 4);
        let sizes: Vec<usize> = groups.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![5, 5, 4, 4]);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    #[should_panic(expected = "at least one rank per group")]
    fn more_groups_than_ranks_panics() {
        contiguous_groups(3, 4);
    }
}
