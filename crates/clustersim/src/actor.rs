//! The actor model for simulated ranks.
//!
//! Each MPI-style rank is an [`Actor`]: an event-driven state machine that
//! reacts to messages from other ranks, storage completions and timers. The
//! paper's adaptive IO protocol (writers, sub-coordinators, coordinator) is
//! implemented as exactly such state machines in `adios-core`.
//!
//! Actors interact with the world only through [`Ctx`], which exposes
//! simulated time, messaging (with a latency/bandwidth cost model), the
//! storage system, timers and a deterministic RNG.

use simcore::{EventToken, Rng, SimDuration, SimTime};
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::system::CompletionKind;
use storesim::StorageSystem;

use crate::faultplane::{FaultPlane, SendFate};
use crate::sim::PendingEvent;

/// A rank index within the simulated job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub u32);

/// A finished storage operation, delivered to the submitting actor.
#[derive(Clone, Copy, Debug)]
pub struct IoComplete {
    /// The actor-chosen tag passed at submission.
    pub tag: u32,
    /// Bytes moved (zero for metadata operations).
    pub bytes: u64,
    /// When the operation was submitted.
    pub submitted: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Operation class.
    pub kind: CompletionKind,
    /// True if any part of the operation hit a failed storage target; the
    /// bytes of the failed parts were **not** durably written.
    pub error: bool,
}

impl IoComplete {
    /// Elapsed service time of the operation.
    pub fn elapsed(&self) -> SimDuration {
        self.finished - self.submitted
    }
}

/// Behaviour of one simulated rank. `Msg` is the application-level message
/// type exchanged between ranks.
pub trait Actor {
    /// Message type delivered between ranks.
    type Msg;

    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A message from another rank has arrived.
    fn on_message(&mut self, from: Rank, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// A storage operation this rank submitted has completed.
    fn on_io_complete(&mut self, _done: IoComplete, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A timer this rank set has fired.
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// The world as seen by one actor during one event dispatch.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) rank: Rank,
    pub(crate) storage: &'a mut StorageSystem,
    pub(crate) queue: &'a mut simcore::EventQueue<PendingEvent<M>>,
    pub(crate) rng: &'a mut Rng,
    pub(crate) msg_latency: f64,
    pub(crate) msg_bandwidth: f64,
    pub(crate) finished: &'a mut u64,
    pub(crate) faults: &'a mut Option<FaultPlane>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Deterministic RNG shared by the simulation.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Latency of a `bytes`-sized message under the network cost model.
    pub fn message_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.msg_latency + bytes as f64 / self.msg_bandwidth)
    }

    /// Send `msg` (costing `bytes` on the wire) to another rank. Delivery
    /// is reliable, ordered per sender-receiver pair (FIFO by schedule
    /// time) and delayed by the network cost model — unless a
    /// [`FaultPlane`] is installed, in which case the message may be
    /// dropped, delayed further, or duplicated per the plane's link rules.
    pub fn send(&mut self, to: Rank, msg: M, bytes: u64)
    where
        M: Clone,
    {
        let base = self.now + self.message_delay(bytes);
        let fate = match self.faults.as_mut() {
            Some(plane) => plane.decide(self.rank, to),
            None => SendFate::Deliver {
                extra: SimDuration::ZERO,
                duplicate: None,
            },
        };
        match fate {
            SendFate::Drop => {}
            SendFate::Deliver { extra, duplicate } => {
                if let Some(dup_extra) = duplicate {
                    self.queue.schedule(
                        base + dup_extra,
                        PendingEvent::Deliver {
                            from: self.rank,
                            to,
                            msg: msg.clone(),
                        },
                    );
                }
                self.queue.schedule(
                    base + extra,
                    PendingEvent::Deliver {
                        from: self.rank,
                        to,
                        msg,
                    },
                );
            }
        }
    }

    /// Send a small control message (fixed 64-byte wire cost).
    pub fn send_control(&mut self, to: Rank, msg: M)
    where
        M: Clone,
    {
        self.send(to, msg, 64);
    }

    /// Set a timer that fires after `delay` with `tag`. The returned token
    /// can cancel it via [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> EventToken {
        self.queue.schedule(
            self.now + delay,
            PendingEvent::Timer {
                rank: self.rank,
                tag,
            },
        )
    }

    /// Cancel a timer set earlier. Returns false if it already fired or was
    /// cancelled before.
    pub fn cancel_timer(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    fn io_tag(&self, tag: u32) -> u64 {
        ((self.rank.0 as u64) << 32) | tag as u64
    }

    /// Submit a write to a byte range of a striped file. Completion is
    /// delivered to this actor with `tag`.
    pub fn write_file(&mut self, file: FileId, offset: u64, len: u64, tag: u32) {
        let t = self.io_tag(tag);
        self.storage.submit_file_write(self.now, file, offset, len, t);
    }

    /// Submit a read of a byte range of a striped file.
    pub fn read_file(&mut self, file: FileId, offset: u64, len: u64, tag: u32) {
        let t = self.io_tag(tag);
        self.storage.submit_file_read(self.now, file, offset, len, t);
    }

    /// Submit a write of `bytes` directly to one storage target.
    pub fn write_ost(&mut self, ost: OstId, bytes: u64, tag: u32) {
        let t = self.io_tag(tag);
        self.storage.submit_ost_write(self.now, ost, bytes, t);
    }

    /// Submit a file open/create to the metadata server.
    pub fn open(&mut self, tag: u32) {
        let t = self.io_tag(tag);
        self.storage.submit_open(self.now, t);
    }

    /// Submit a file close to the metadata server.
    pub fn close(&mut self, tag: u32) {
        let t = self.io_tag(tag);
        self.storage.submit_close(self.now, t);
    }

    /// Create a file in the layout layer (instantaneous bookkeeping; the
    /// metadata *cost* is modelled by [`Ctx::open`]).
    pub fn create_file(&mut self, name: impl Into<String>, spec: StripeSpec) -> FileId {
        self.storage.fs_mut().create(name, spec)
    }

    /// Create a file with an explicit stripe size (ADIOS MPI-IO sets the
    /// stripe width to the per-rank buffer size).
    pub fn create_file_with_stripe_size(
        &mut self,
        name: impl Into<String>,
        spec: StripeSpec,
        stripe_size: u64,
    ) -> FileId {
        self.storage
            .create_file_with_stripe_size(name, spec, stripe_size)
    }

    /// Read-only access to the storage system (diagnostics).
    pub fn storage(&self) -> &StorageSystem {
        self.storage
    }

    /// Signal that this actor's goal is reached. [`crate::Simulation`]'s
    /// `run_until` stops once enough finish signals have accumulated —
    /// essential on machines with perpetual background activity (noise,
    /// interference streams), where the event queue never drains on its
    /// own.
    pub fn finish(&mut self) {
        *self.finished += 1;
    }
}
