//! Collective-operation building blocks for actor protocols.
//!
//! MPI-style transports need barriers (IOR separates its open and write
//! phases; `MPI_File_open` is collective) and reductions. This module
//! provides a small, reusable state machine for a centralised barrier
//! with an optional reduced value, plus cost helpers for tree-structured
//! collectives whose message traffic isn't worth simulating hop by hop.

use crate::actor::{Ctx, Rank};
use simcore::SimDuration;

/// Root rank of centralised collectives.
pub const ROOT: Rank = Rank(0);

/// A reusable centralised barrier: every rank reports to rank 0, which
/// releases everyone once all have arrived. The caller owns message
/// delivery; this struct only tracks arrival state on the root.
#[derive(Clone, Debug)]
pub struct Barrier {
    expected: usize,
    arrived: usize,
    /// Accumulator for an optional max-reduction piggybacked on arrival.
    max_value: u64,
}

impl Barrier {
    /// A barrier over `expected` ranks (including the root).
    pub fn new(expected: usize) -> Self {
        assert!(expected > 0);
        Barrier {
            expected,
            arrived: 0,
            max_value: 0,
        }
    }

    /// Record one arrival carrying `value`; returns `Some(max)` when this
    /// arrival completes the barrier.
    pub fn arrive(&mut self, value: u64) -> Option<u64> {
        assert!(self.arrived < self.expected, "barrier over-arrived");
        self.arrived += 1;
        self.max_value = self.max_value.max(value);
        if self.arrived == self.expected {
            Some(self.max_value)
        } else {
            None
        }
    }

    /// Arrivals so far.
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// Reset for reuse (multi-step protocols).
    pub fn reset(&mut self) {
        self.arrived = 0;
        self.max_value = 0;
    }
}

/// Latency of a tree-structured collective over `n` ranks under `ctx`'s
/// network cost model: `2 · ceil(log2 n)` small-message hops (up the
/// reduction tree and back down the broadcast), the standard model for
/// `MPI_Scan`/`MPI_Allreduce`-style offset agreement.
pub fn tree_collective_delay<M>(ctx: &Ctx<'_, M>, n: usize) -> SimDuration {
    let hops = 2 * crate::topology::log2_ceil(n as u64) as u64;
    ctx.message_delay(64) * hops.max(1)
}

/// Broadcast a message from the root to every other rank (the release
/// half of a centralised barrier). The closure builds a fresh message per
/// destination.
pub fn broadcast_from_root<M: Clone>(ctx: &mut Ctx<'_, M>, n: usize, mut mk: impl FnMut() -> M) {
    debug_assert_eq!(ctx.rank(), ROOT, "broadcast must run on the root");
    for r in 1..n as u32 {
        let msg = mk();
        ctx.send_control(Rank(r), msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_completes_exactly_once() {
        let mut b = Barrier::new(3);
        assert_eq!(b.arrive(5), None);
        assert_eq!(b.arrive(9), None);
        assert_eq!(b.arrive(2), Some(9), "max-reduction over arrivals");
    }

    #[test]
    #[should_panic(expected = "over-arrived")]
    fn over_arrival_panics() {
        let mut b = Barrier::new(1);
        b.arrive(0);
        b.arrive(0);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut b = Barrier::new(2);
        b.arrive(1);
        assert_eq!(b.arrive(2), Some(2));
        b.reset();
        assert_eq!(b.arrived(), 0);
        b.arrive(7);
        assert_eq!(b.arrive(3), Some(7));
    }

    #[test]
    fn single_rank_barrier_is_immediate() {
        let mut b = Barrier::new(1);
        assert_eq!(b.arrive(42), Some(42));
    }
}
