//! # clustersim — compute-cluster half of the co-simulation
//!
//! Simulated MPI-style ranks as event-driven [`Actor`]s, message passing
//! with a latency/bandwidth cost model, timers, and the [`Simulation`]
//! driver that couples the rank world with a
//! [`storesim::StorageSystem`] under one deterministic clock.
//!
//! The paper's coordinator / sub-coordinator / writer protocol (Fig. 4,
//! Algorithms 1–3) is built on exactly this actor interface in
//! `adios-core`.

#![warn(missing_docs)]

pub mod actor;
pub mod collective;
pub mod faultplane;
pub mod sim;
pub mod topology;

pub use actor::{Actor, Ctx, IoComplete, Rank};
pub use collective::Barrier;
pub use faultplane::{FaultPlane, LinkFaults, SendFate};
pub use sim::{PendingEvent, RunStats, Simulation, TraceRecord};
