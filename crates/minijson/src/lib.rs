//! # minijson — dependency-free JSON for experiment artifacts
//!
//! The benchmark harnesses and campaign runners emit one JSON object per
//! experiment row (`target/experiments/*.jsonl`, `BENCH_*.json`), and a
//! few model types round-trip through JSON for artifact storage. This
//! crate provides exactly that much JSON — a [`Value`] tree, a compact
//! emitter ([`std::fmt::Display`]), a strict recursive-descent
//! [`parser`](Value::parse), and a [`json!`] macro for object literals —
//! with zero external dependencies, so the whole workspace builds
//! offline.
//!
//! Numbers are kept in two lexical families the way the harnesses use
//! them: integers ([`Value::Int`]) print without a decimal point, floats
//! ([`Value::Num`]) print via Rust's shortest-round-trip formatting.
//!
//! ```
//! use minijson::{json, Value};
//!
//! let row = json!({ "figure": "1", "writers": 512, "agg_mean_bps": 1.5e9 });
//! let text = row.to_string();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("writers").and_then(Value::as_u64), Some(512));
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted with shortest-round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an `i64` (floats that are exact integers narrow).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Num(x) if x.fract() == 0.0 && x.abs() < 9.22e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. The whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object keys (empty for other variants), for diagnostics.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Structural equality ignoring object key order and integer/float
    /// representation (3 == 3.0). This is the right notion for "same
    /// artifact" comparisons across emitters.
    pub fn semantically_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Obj(a), Value::Obj(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                let bm: BTreeMap<&str, &Value> = b.iter().map(|(k, v)| (k.as_str(), v)).collect();
                a.iter().all(|(k, v)| {
                    bm.get(k.as_str()).is_some_and(|w| v.semantically_eq(w))
                })
            }
            (Value::Arr(a), Value::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.semantically_eq(y))
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            },
        }
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(x) => {
                if x.is_finite() {
                    // Keep floats lexically floats so parse() preserves
                    // the variant for round numbers.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Inf; emit null like serde_json.
                    f.write_str("null")
                }
            }
            Value::Str(s) => escape_into(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our emitters;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integer literal out of i64 range: keep it as a float.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

// ---- Conversions used by the json! macro ------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}
impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Num(x as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::Str(s.clone())
    }
}
macro_rules! int_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Value {
                Value::Int(i as i64)
            }
        }
    )*};
}
int_from!(i8, i16, i32, i64, u8, u16, u32, isize);
impl From<u64> for Value {
    fn from(i: u64) -> Value {
        match i64::try_from(i) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Num(i as f64),
        }
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::from(i as u64)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Arr(items.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Build a [`Value`] from a JSON-shaped literal.
///
/// Supports object literals with string-literal keys, array literals,
/// and arbitrary expressions in value position (converted with
/// `Into<Value>`). Nest structures with nested `json!` calls:
///
/// ```
/// use minijson::json;
/// let v = json!({ "name": "fig1", "writers": 512, "series": json!([1, 2, 3]) });
/// assert_eq!(v.get("writers").unwrap().as_u64(), Some(512));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $(($key.to_string(), $crate::Value::from($val))),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $($crate::Value::from($item)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn ints_and_floats_are_distinct() {
        assert_eq!(Value::parse("3").unwrap(), Value::Int(3));
        assert_eq!(Value::parse("3.0").unwrap(), Value::Num(3.0));
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Num(3.0).to_string(), "3.0");
    }

    #[test]
    fn float_emission_round_trips_exactly() {
        for &x in &[1.5e9, 0.1, -2.75, 1.0 / 3.0, f64::MAX, 5e-324] {
            let v = Value::Num(x);
            let back = Value::parse(&v.to_string()).unwrap();
            assert_eq!(back.as_f64(), Some(x), "round-trip of {x}");
        }
    }

    #[test]
    fn object_macro_and_access() {
        let machine = "Jaguar/Lustre".to_string();
        let v = json!({
            "figure": "1",
            "machine": machine,
            "writers": 512usize,
            "agg_mean_bps": 1.5e9,
            "ok": true,
        });
        assert_eq!(v.get("figure").unwrap().as_str(), Some("1"));
        assert_eq!(v.get("machine").unwrap().as_str(), Some("Jaguar/Lustre"));
        assert_eq!(v.get("writers").unwrap().as_usize(), Some(512));
        assert_eq!(v.get("agg_mean_bps").unwrap().as_f64(), Some(1.5e9));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_macro_forms() {
        let v = json!({
            "series": json!([1, 2, 3]),
            "inner": json!({ "a": json!(null), "b": json!([true, "x"]) }),
        });
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("inner").unwrap().get("a"), Some(&Value::Null));
    }

    #[test]
    fn emission_parses_back() {
        let v = json!({
            "s": "a \"quoted\" value\nwith newline",
            "xs": json!([1.25, -3, 0]),
            "t": json!({ "k": "v" }),
        });
        let text = v.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2", "{\"a\":}"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode() {
        let v = Value::parse(" { \"k\" : [ 1 , \"héllo\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().at(1).unwrap().as_str(), Some("héllo"));
        let esc = Value::parse("\"\\u00e9\"").unwrap();
        assert_eq!(esc.as_str(), Some("é"));
    }

    #[test]
    fn semantic_equality_ignores_key_order_and_int_float() {
        let a = Value::parse("{\"x\":1,\"y\":2.0}").unwrap();
        let b = Value::parse("{\"y\":2,\"x\":1.0}").unwrap();
        assert!(a.semantically_eq(&b));
        let c = Value::parse("{\"x\":1,\"y\":3}").unwrap();
        assert!(!a.semantically_eq(&c));
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn u64_beyond_i64_becomes_float() {
        let v = Value::from(u64::MAX);
        assert!(matches!(v, Value::Num(_)));
    }
}
