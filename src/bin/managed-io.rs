//! `managed-io` — command-line front end to the reproduction.
//!
//! ```text
//! managed-io run      --machine jaguar --method adaptive --procs 4096 \
//!                     --mb-per-proc 128 --targets 512 [--interference] [--seed N]
//! managed-io sweep    --machine jaguar --method adaptive --mb-per-proc 128 \
//!                     --procs 512,2048,8192 [--samples 5]
//! managed-io table1   [--samples 60]
//! managed-io machines
//! ```
//!
//! Everything the subcommands print is also available programmatically;
//! the CLI exists so the experiments can be driven without writing Rust.

use managed_io::adios::{
    run, AdaptiveOpts, DataSpec, Interference, Method, OutputResult, RunSpec,
};
use managed_io::iostats::{Summary, Table};
use managed_io::simcore::units::{GIB, MIB};
use managed_io::storesim::params::{
    bluegene_gpfs, franklin, jaguar, testbed, xtp, xtp_with_competing_ior, MachineConfig,
};
use managed_io::workloads::ior::aggregate_bandwidths;
use managed_io::workloads::IorConfig;

/// Minimal `--key value` / `--flag` argument map.
#[derive(Debug, Default)]
struct Args {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut argv = argv.peekable();
        while let Some(a) = argv.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match argv.peek() {
                    Some(v) if !v.starts_with("--") => Some(argv.next().expect("peeked")),
                    _ => None,
                };
                out.options.push((key.to_string(), value));
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    fn flag(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        Ok(self.get_u64(key, default as u64)? as usize)
    }
}

fn machine_by_name(name: &str) -> Result<MachineConfig, String> {
    match name {
        "jaguar" => Ok(jaguar()),
        "franklin" => Ok(franklin()),
        "xtp" => Ok(xtp()),
        "xtp-busy" => Ok(xtp_with_competing_ior()),
        "bgp" => Ok(bluegene_gpfs()),
        "testbed" => Ok(testbed()),
        other => Err(format!(
            "unknown machine {other:?} (jaguar | franklin | xtp | xtp-busy | bgp | testbed)"
        )),
    }
}

fn method_by_name(name: &str, targets: usize) -> Result<Method, String> {
    match name {
        "posix" => Ok(Method::Posix { targets }),
        "mpiio" | "mpi" => Ok(Method::MpiIo {
            stripe_count: targets,
        }),
        "stagger" => Ok(Method::Stagger { targets }),
        "adaptive" => Ok(Method::Adaptive {
            targets,
            opts: AdaptiveOpts::default(),
        }),
        other => Err(format!(
            "unknown method {other:?} (posix | mpiio | stagger | adaptive)"
        )),
    }
}

fn print_result(r: &OutputResult) {
    println!(
        "ranks {:>6}  bytes {:>8.1} GiB  span {:>8.3} s  aggregate {:>7.2} GiB/s  adaptive writes {}",
        r.records.len(),
        r.total_bytes as f64 / GIB as f64,
        r.write_span(),
        r.aggregate_bandwidth() / GIB as f64,
        r.adaptive_writes,
    );
    let times = r.per_writer_times();
    let s = Summary::of(&times);
    println!(
        "per-writer write time: mean {:.3} s, std {:.3} s, min {:.3}, max {:.3}, imbalance {:.2}",
        s.mean,
        s.std_dev,
        s.min,
        s.max,
        r.imbalance_factor()
    );
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let machine = machine_by_name(args.get("machine").unwrap_or("jaguar"))?;
    let targets = args.get_usize("targets", 512)?;
    let method = method_by_name(args.get("method").unwrap_or("adaptive"), targets)?;
    let nprocs = args.get_usize("procs", 1024)?;
    let mb = args.get_u64("mb-per-proc", 128)?;
    let seed = args.get_u64("seed", 2010)?;
    let interference = if args.flag("interference") {
        Interference::paper_default()
    } else {
        Interference::None
    };
    let out = run(RunSpec {
        machine,
        nprocs,
        data: DataSpec::Uniform(mb * MIB),
        method,
        interference,
        seed,
    });
    print_result(&out.result);
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let machine = machine_by_name(args.get("machine").unwrap_or("jaguar"))?;
    let targets = args.get_usize("targets", 512)?;
    let method_name = args.get("method").unwrap_or("adaptive").to_string();
    let mb = args.get_u64("mb-per-proc", 128)?;
    let samples = args.get_usize("samples", 5)?;
    let seed = args.get_u64("seed", 2010)?;
    let procs: Vec<usize> = args
        .get("procs")
        .unwrap_or("512,2048,8192")
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad proc count {p:?}")))
        .collect::<Result<_, _>>()?;
    let interference = if args.flag("interference") {
        Interference::paper_default()
    } else {
        Interference::None
    };
    let mut table = Table::new(vec!["procs", "avg GiB/s", "min", "max", "std(t) s"]);
    for &n in &procs {
        let method = method_by_name(&method_name, targets)?;
        let mut bws = Vec::with_capacity(samples);
        let mut stds = Vec::with_capacity(samples);
        for k in 0..samples {
            let out = run(RunSpec {
                machine: machine.clone(),
                nprocs: n,
                data: DataSpec::Uniform(mb * MIB),
                method: method.clone(),
                interference: interference.clone(),
                seed: seed + k as u64,
            });
            bws.push(out.result.aggregate_bandwidth());
            stds.push(Summary::of(&out.result.per_writer_times()).std_dev);
        }
        let s = Summary::of(&bws);
        table.row(vec![
            n.to_string(),
            format!("{:.2}", s.mean / GIB as f64),
            format!("{:.2}", s.min / GIB as f64),
            format!("{:.2}", s.max / GIB as f64),
            format!("{:.3}", stds.iter().sum::<f64>() / stds.len() as f64),
        ]);
    }
    println!(
        "{} x {} MB/proc, method {}, {}:",
        machine.name,
        mb,
        method_name,
        if args.flag("interference") {
            "with interference"
        } else {
            "base"
        }
    );
    println!("{}", table.render());
    Ok(())
}

fn cmd_table1(args: &Args) -> Result<(), String> {
    let samples = args.get_usize("samples", 60)?;
    let seed = args.get_u64("seed", 2010)?;
    let mut table = Table::new(vec!["Machine", "Samples", "Avg MiB/s", "Std", "CV"]);
    let cases = [
        (jaguar(), 512usize, 512usize),
        (franklin(), 80, 80),
        (xtp_with_competing_ior(), 512, 40),
        (xtp(), 512, 40),
    ];
    for (machine, writers, osts) in cases {
        let cfg = IorConfig {
            writers,
            bytes_per_writer: 128 * MIB,
            osts,
        };
        let rs = cfg.run_samples(&machine, &Interference::None, samples, seed);
        let s = Summary::of(&aggregate_bandwidths(&rs));
        table.row(vec![
            machine.name.clone(),
            s.n.to_string(),
            format!("{:.1}", s.mean / MIB as f64),
            format!("{:.1}", s.std_dev / MIB as f64),
            format!("{:.1}%", s.cv() * 100.0),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_machines() -> Result<(), String> {
    let mut table = Table::new(vec!["name", "targets", "max stripe", "peak GiB/s", "noise"]);
    for m in [jaguar(), franklin(), xtp(), xtp_with_competing_ior(), bluegene_gpfs(), testbed()] {
        table.row(vec![
            m.name.clone(),
            m.ost_count.to_string(),
            m.max_stripe_count.to_string(),
            format!("{:.1}", m.theoretical_peak().gib_per_sec()),
            if m.noise.jobs.enabled {
                "production".to_string()
            } else if m.noise.micro.enabled {
                "quiet+jitter".to_string()
            } else {
                "none".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

const USAGE: &str = "managed-io <run | sweep | table1 | machines> [options]
  run      --machine M --method (posix|mpiio|stagger|adaptive) --procs N
           --mb-per-proc MB --targets T [--interference] [--seed S]
  sweep    same options, --procs as a comma list, plus --samples K
  table1   [--samples K] [--seed S]
  machines list the machine presets";

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_default();
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "sweep" => cmd_sweep(&args),
        "table1" => cmd_table1(&args),
        "machines" => cmd_machines(),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn parses_options_and_flags() {
        let a = args("--machine xtp --procs 64 --interference --seed 7");
        assert_eq!(a.get("machine"), Some("xtp"));
        assert_eq!(a.get_usize("procs", 0).unwrap(), 64);
        assert!(a.flag("interference"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
        assert!(!a.flag("missing"));
        assert_eq!(a.get_u64("missing", 42).unwrap(), 42);
    }

    #[test]
    fn bad_numbers_error() {
        let a = args("--procs abc");
        assert!(a.get_usize("procs", 0).is_err());
    }

    #[test]
    fn machine_lookup() {
        assert!(machine_by_name("jaguar").is_ok());
        assert!(machine_by_name("bgp").is_ok());
        assert!(machine_by_name("nope").is_err());
    }

    #[test]
    fn method_lookup() {
        assert!(matches!(
            method_by_name("adaptive", 8).unwrap(),
            Method::Adaptive { targets: 8, .. }
        ));
        assert!(matches!(
            method_by_name("mpi", 4).unwrap(),
            Method::MpiIo { stripe_count: 4 }
        ));
        assert!(method_by_name("what", 1).is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        let a = args("--machine testbed --method adaptive --procs 16 --mb-per-proc 4 --targets 8");
        cmd_run(&a).unwrap();
    }

    #[test]
    fn sweep_command_end_to_end() {
        let a = args("--machine testbed --method posix --procs 8,16 --mb-per-proc 2 --targets 8 --samples 2");
        cmd_sweep(&a).unwrap();
    }
}
