//! # managed-io — facade crate
//!
//! Re-exports the full managed-io stack: the deterministic simulation
//! engine, the petascale storage substrate, the cluster/actor runtime, the
//! BP-style file format, the ADIOS-style middleware with the SC'10 adaptive
//! transport, workload generators, and statistics helpers.
//!
//! See the individual crates for detail:
//!
//! * [`simcore`] — discrete-event engine, RNG, time, units.
//! * [`storesim`] — OSTs, metadata server, striping, interference.
//! * [`clustersim`] — ranks, actors, network, simulation runner.
//! * [`bpfmt`] — self-describing output format with local/global indices.
//! * [`adios`] (re-export of `adios-core`) — transports: POSIX, MPI-IO,
//!   stagger, adaptive.
//! * [`workloads`] — IOR, Pixie3D, XGC1, interference jobs.
//! * [`iostats`] — summary statistics, histograms, imbalance factors.
//! * [`minijson`] — dependency-free JSON value/parser/emitter for
//!   artifacts and config files.

pub use adios_core as adios;
pub use bpfmt;
pub use minijson;
pub use clustersim;
pub use iostats;
pub use simcore;
pub use storesim;
pub use workloads;
