//! Quickstart: write one output step with the adaptive method and read it
//! back through the global index.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use managed_io::adios::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io::bpfmt::{read_global_f64, VarBlock};
use managed_io::simcore::units::MIB;
use managed_io::storesim::params::testbed;

fn main() {
    // 16 ranks each own a slice of a global 1-D array.
    let nprocs = 16;
    let per_rank = 1024u64;
    let blocks: Vec<Vec<VarBlock>> = (0..nprocs)
        .map(|r| {
            let vals: Vec<f64> = (0..per_rank)
                .map(|i| ((r as u64 * per_rank + i) as f64).sin())
                .collect();
            vec![VarBlock::from_f64(
                "signal",
                vec![nprocs as u64 * per_rank],
                vec![r as u64 * per_rank],
                vec![per_rank],
                &vals,
            )]
        })
        .collect();

    let spec = RunSpec {
        machine: testbed(),
        nprocs,
        data: DataSpec::Real(blocks),
        method: Method::Adaptive {
            targets: 8,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 42,
    };

    let out = run(spec);
    println!(
        "wrote {} bytes in {:.3}s  (aggregate {:.1} MiB/s, {} adaptive writes)",
        out.result.total_bytes,
        out.result.write_span(),
        out.result.aggregate_bandwidth() / MIB as f64,
        out.result.adaptive_writes,
    );

    // Read back through the merged global index.
    let gidx = out.global_index.expect("global index");
    let files = out.subfiles.expect("subfiles");
    let all = read_global_f64(&gidx, &files, "signal", 0).expect("restart read");
    assert_eq!(all.len(), (nprocs as u64 * per_rank) as usize);
    assert!((all[0] - 0.0f64.sin()).abs() < 1e-12);
    println!(
        "restart read OK: {} elements, global index lists {} blocks in {} subfiles",
        all.len(),
        gidx.entries.len(),
        gidx.files.len()
    );

    // Characteristics-driven query: which blocks may contain values near 1?
    let hits = gidx.find_range("signal", 0.9999, 1.0).count();
    println!("blocks possibly containing a value in [0.9999, 1]: {hits}");
}
