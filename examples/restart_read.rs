//! Restart read: write an output set with the adaptive method, then read
//! everything back through the index layout with a restarting job of a
//! different size — the paper's §IV-C/§V read-path discussion.
//!
//! ```sh
//! cargo run --release --example restart_read
//! ```

use managed_io::adios::readback::ReadPlan;
use managed_io::adios::{
    run, run_restart_read, AdaptiveOpts, DataSpec, Interference, Method, RunSpec,
};
use managed_io::simcore::units::{GIB, MIB};
use managed_io::storesim::params::jaguar;

fn main() {
    let machine = jaguar();
    let nprocs = 1024;

    // Write a checkpoint with the adaptive method.
    let out = run(RunSpec {
        machine: machine.clone(),
        nprocs,
        data: DataSpec::Uniform(64 * MIB),
        method: Method::Adaptive {
            targets: 256,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 7,
    });
    println!(
        "checkpoint: {} GiB written at {:.2} GiB/s ({} adaptive writes, {} subfile targets)",
        out.result.total_bytes / GIB,
        out.result.aggregate_bandwidth() / GIB as f64,
        out.result.adaptive_writes,
        256,
    );

    // Restart at several job sizes: each reader fetches its share of the
    // blocks via one index lookup + one contiguous read per block.
    for readers in [64usize, 256, 1024] {
        let plan = ReadPlan::from_records(&out.result.records, readers);
        let res = run_restart_read(&machine, &plan, 11);
        println!(
            "restart with {readers:>5} readers: {:.2} GiB/s ({} blocks over {} subfiles)",
            res.aggregate_bandwidth() / GIB as f64,
            plan.per_reader.iter().map(|b| b.len()).sum::<usize>(),
            plan.files.len(),
        );
    }
}
