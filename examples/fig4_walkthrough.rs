//! Figure 4 walkthrough: run a tiny adaptive output with protocol tracing
//! and print the message flow — writers, sub-coordinators (SC) and the
//! coordinator (C) in the organisation of the paper's Fig. 4 and
//! Algorithms 1–3.
//!
//! ```sh
//! cargo run --release --example fig4_walkthrough
//! ```

use std::rc::Rc;
use std::sync::Arc;

use managed_io::adios::adaptive::{AdaptiveActor, AdaptiveOpts};
use managed_io::adios::plan::OutputPlan;
use managed_io::adios::protocol::Msg;
use managed_io::clustersim::{Rank, Simulation};
use managed_io::simcore::units::MIB;
use managed_io::simcore::SimTime;
use managed_io::storesim::layout::StripeSpec;
use managed_io::storesim::params::testbed;
use managed_io::storesim::StorageSystem;

fn msg_label(m: &Msg) -> String {
    match m {
        Msg::WriteNow(a) => format!(
            "WRITE_NOW -> file of group {} at offset {}{}",
            a.target_group,
            a.offset,
            if a.is_adaptive() { " (adaptive)" } else { "" }
        ),
        Msg::WriteComplete { assignment, bytes } => format!(
            "WRITE_COMPLETE ({} B into group {}'s file{})",
            bytes,
            assignment.target_group,
            if assignment.is_adaptive() { ", adaptive" } else { "" }
        ),
        Msg::IndexBody { target_group, .. } => format!("INDEX_BODY -> SC of group {target_group}"),
        Msg::AdaptiveComplete { target_group, bytes } => {
            format!("ADAPTIVE_WRITE_COMPLETE (target group {target_group}, {bytes} B)")
        }
        Msg::ScComplete { group, final_offset } => {
            format!("SC WRITE_COMPLETE (group {group} done, final offset {final_offset})")
        }
        Msg::WritersBusy { group, .. } => format!("WRITERS_BUSY (group {group})"),
        Msg::IndexToC { group, .. } => format!("INDEX -> C (group {group})"),
        Msg::AdaptiveWriteStart { target_group, offset, .. } => {
            format!("ADAPTIVE_WRITE_START (target group {target_group}, offset {offset})")
        }
        Msg::OverallWriteComplete => "OVERALL_WRITE_COMPLETE".to_string(),
        // Fault-protocol traffic never appears in this fault-free walkthrough.
        other => format!("{other:?}"),
    }
}

fn main() {
    // 8 writers in 2 groups; hammer group 0's OST so work shifting fires.
    let machine = testbed();
    let plan = Arc::new(OutputPlan::uniform(8, 2, machine.ost_count, 64 * MIB));
    let opts = Rc::new(AdaptiveOpts::default());
    let mut storage = StorageSystem::new(machine.clone(), 5);
    let mut files = Vec::new();
    for g in 0..plan.targets {
        let ost = plan.ost_of_group[g];
        files.push(storage.fs_mut().create(format!("sub-{g}.bp"), StripeSpec::Pinned(vec![ost])));
    }
    let gidx = storage.fs_mut().create(
        "global-index.bp",
        StripeSpec::Pinned(vec![managed_io::storesim::OstId(0)]),
    );
    storage.add_background_stream(SimTime::ZERO, managed_io::storesim::OstId(0), 256 * MIB);
    let files = Rc::new(files);
    let actors: Vec<AdaptiveActor> = (0..8)
        .map(|r| {
            AdaptiveActor::new(r, Arc::clone(&plan), Rc::clone(&opts), Rc::clone(&files), gidx, None, None, 0)
        })
        .collect();
    let mut sim = Simulation::with_storage(machine, actors, 5, storage);
    sim.enable_trace_with(4096, msg_label);
    sim.run_until(1, SimTime::from_secs_f64(1e5));

    let role = |r: Rank| -> &'static str {
        match r.0 {
            0 => "C+SC0+writer",
            4 => "SC1+writer ",
            _ => "writer     ",
        }
    };
    println!("Adaptive IO protocol walkthrough (8 writers, 2 groups, group 0's target slowed):\n");
    for ev in sim.take_trace() {
        println!(
            "{:>10.4}s  rank {} [{}]  {}",
            ev.at.as_secs_f64(),
            ev.rank.0,
            role(ev.rank),
            ev.what
        );
    }
    let c = sim.actor(Rank(0));
    println!(
        "\nadaptive writes completed: {} (coordinator bound: ≤ SC count − 1 simultaneous = {})",
        c.adaptive_completed().unwrap_or(0),
        c.max_outstanding().unwrap_or(0),
    );
}
