//! External-interference study (paper §II-2): hourly-style IOR probes on
//! a busy machine, reporting the bandwidth distribution (Table I /
//! Fig. 2) and per-writer imbalance (Fig. 3).
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use managed_io::adios::Interference;
use managed_io::iostats::{imbalance_factor, Histogram, Summary};
use managed_io::simcore::units::MIB;
use managed_io::storesim::params::{jaguar, xtp, xtp_with_competing_ior};
use managed_io::workloads::ior::aggregate_bandwidths;
use managed_io::workloads::IorConfig;

fn main() {
    let samples = 60; // scaled-down stand-in for the paper's 469 probes

    // Jaguar: production noise only.
    let jaguar_cfg = IorConfig {
        writers: 512,
        bytes_per_writer: 128 * MIB,
        osts: 512,
    };
    let rs = jaguar_cfg.run_samples(&jaguar(), &Interference::None, samples, 1);
    let bws = aggregate_bandwidths(&rs);
    let s = Summary::of(&bws);
    println!(
        "Jaguar/Lustre: {} samples, avg {:.1} MiB/s, std {:.1}, CV {:.0}%",
        s.n,
        s.mean / MIB as f64,
        s.std_dev / MIB as f64,
        s.cv() * 100.0
    );
    println!("bandwidth histogram (MiB/s):");
    let h = Histogram::of(&bws.iter().map(|b| b / MIB as f64).collect::<Vec<_>>(), 12);
    print!("{}", h.render(40));

    // Per-writer imbalance: two consecutive probes (the paper's Fig. 3
    // pair taken 3 minutes apart).
    let t1 = jaguar_cfg.run_once(&jaguar(), &Interference::None, 101);
    let t2 = jaguar_cfg.run_once(&jaguar(), &Interference::None, 102);
    println!(
        "\nimbalance factors of two consecutive probes: {:.2} vs {:.2}",
        imbalance_factor(&t1.per_writer_times()),
        imbalance_factor(&t2.per_writer_times()),
    );

    // XTP: quiet vs a second competing job.
    let xtp_cfg = IorConfig {
        writers: 40,
        bytes_per_writer: 128 * MIB,
        osts: 40,
    };
    for (label, machine) in [("without Int.", xtp()), ("with Int.", xtp_with_competing_ior())] {
        let rs = xtp_cfg.run_samples(&machine, &Interference::None, samples, 500);
        let s = Summary::of(&aggregate_bandwidths(&rs));
        println!(
            "XTP/PanFS ({label}): avg {:.1} MiB/s, std {:.1}, CV {:.0}%",
            s.mean / MIB as f64,
            s.std_dev / MIB as f64,
            s.cv() * 100.0
        );
    }
}
