//! Pixie3D IO campaign: the paper's §IV-A comparison of the MPI-IO base
//! transport vs the adaptive method, on the Jaguar preset.
//!
//! Defaults to a reduced scale so it runs in seconds; pass `--full` for
//! the paper's process counts (512…16384).
//!
//! ```sh
//! cargo run --release --example pixie3d_campaign [-- --full]
//! ```

use managed_io::adios::Interference;
use managed_io::iostats::Table;
use managed_io::simcore::units::GIB;
use managed_io::storesim::params::jaguar;
use managed_io::workloads::campaign::compare_at_scale;
use managed_io::workloads::Pixie3dConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let machine = jaguar();
    let scales: &[usize] = if full {
        &[512, 1024, 2048, 4096, 8192, 16384]
    } else {
        &[512, 1024, 2048]
    };
    let samples = if full { 5 } else { 3 };

    type Model = (&'static str, fn(usize) -> Pixie3dConfig);
    let models: [Model; 2] = [
        ("small (2 MB/proc)", Pixie3dConfig::small),
        ("large (128 MB/proc)", Pixie3dConfig::large),
    ];
    for (label, mk) in models {
        println!("\nPixie3D {label} on {}:", machine.name);
        let mut table = Table::new(vec![
            "procs", "method", "avg GiB/s", "max GiB/s", "min GiB/s", "std(t) s",
        ]);
        for &n in scales {
            let cfg = mk(n);
            let rows = compare_at_scale(
                &machine,
                cfg.nprocs,
                cfg.bytes_per_process(),
                512,
                &Interference::None,
                samples,
                7_000 + n as u64,
            );
            for r in rows {
                table.row(vec![
                    r.nprocs.to_string(),
                    r.method.to_string(),
                    format!("{:.2}", r.bandwidth.mean / GIB as f64),
                    format!("{:.2}", r.bandwidth.max / GIB as f64),
                    format!("{:.2}", r.bandwidth.min / GIB as f64),
                    format!("{:.3}", r.write_time_std),
                ]);
            }
        }
        println!("{}", table.render());
    }
    println!("(Adaptive uses 512 targets; MPI is limited to the 160-OST Lustre stripe cap.)");
}
