//! XGC1 IO campaign (paper §IV-B): 38 MB/process fusion PIC output,
//! MPI-IO vs adaptive, under a quiet system and under the paper's
//! artificial interference (three 1 GiB streamers on each of 8 targets).
//!
//! ```sh
//! cargo run --release --example xgc1_campaign [-- --full]
//! ```

use managed_io::adios::Interference;
use managed_io::iostats::Table;
use managed_io::simcore::units::GIB;
use managed_io::storesim::params::jaguar;
use managed_io::workloads::campaign::compare_at_scale;
use managed_io::workloads::Xgc1Config;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let machine = jaguar();
    let scales: &[usize] = if full {
        &[512, 1024, 2048, 4096, 8192]
    } else {
        &[512, 1024]
    };
    let samples = if full { 5 } else { 3 };

    for (env, interference) in [
        ("base", Interference::None),
        ("interference", Interference::paper_default()),
    ] {
        println!("\nXGC1 (38 MB/proc) on {} — {env}:", machine.name);
        let mut table = Table::new(vec![
            "procs", "method", "avg GiB/s", "max GiB/s", "std(t) s", "adaptive writes",
        ]);
        for &n in scales {
            let cfg = Xgc1Config::paper(n);
            let rows = compare_at_scale(
                &machine,
                cfg.nprocs,
                cfg.bytes_per_process(),
                512,
                &interference,
                samples,
                9_000 + n as u64,
            );
            for r in rows {
                table.row(vec![
                    r.nprocs.to_string(),
                    r.method.to_string(),
                    format!("{:.2}", r.bandwidth.mean / GIB as f64),
                    format!("{:.2}", r.bandwidth.max / GIB as f64),
                    format!("{:.3}", r.write_time_std),
                    format!("{:.1}", r.adaptive_writes),
                ]);
            }
        }
        println!("{}", table.render());
    }
}
